"""Build the tiled-stencil task graph (base or CA) and its kernels.

One builder covers both PaRSEC implementations of the paper; the step
size selects the scheme (``steps=1`` = base, ``steps=s`` = CA/PA1).
Every task is keyed ``(name, i, j, t)`` with ``t = -1`` for the
initialisation tasks that load the initial grid and publish the first
ghost strips.

Flows (all derived from :class:`~repro.core.spec.StencilSpec`, the
single source of truth shared with the executing kernels):

* ``"tile"`` -- the tile's extended array, flowing iteration to
  iteration on the same node (0 bytes: it never moves);
* ``"sN" / "sS" / "sW" / "sE"`` -- 1-deep local strips named by the
  *consumer's* pad side, exchanged every iteration across local edges;
* ``"dN" / ...`` -- s-deep remote strips, sent every ``s`` iterations
  across node boundaries;
* ``"cNW" / ...`` -- corner blocks for remote refreshes, named by the
  consumer's corner (CA only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..distgrid.halo import CORNERS, SIDES, Corner, Side
from ..distgrid.tile import TileSpec
from ..machine.machine import MachineSpec
from ..runtime.graph import TaskGraph
from ..runtime.task import Flow, Task, TaskKey
from ..stencil.cost import KernelCostModel
from ..stencil.kernels import FLOP_PER_POINT
from ..stencil.variable import apply_stencil_region
from .spec import ITEMSIZE, StencilSpec

#: Priority bias making node-boundary tasks run before interior ones
#: within the same iteration, so their messages enter the network as
#: early as possible (the communication-hiding heuristic).
BOUNDARY_PRIORITY = 1


def _side_tag(consumer_side: Side, deep: bool) -> str:
    return ("d" if deep else "s") + consumer_side.name[0]


def _corner_tag(consumer_corner: Corner) -> str:
    return "c" + consumer_corner.name


class StencilKernels:
    """The executable bodies of the stencil tasks.

    One instance serves every task of a graph (no per-task closures);
    the task key supplies (i, j, t).  Payload contract: ``"tile"``
    carries the tile's full extended array holding iteration-``t+1``
    values on the update region and still-valid older values elsewhere.
    """

    def __init__(self, spec: StencilSpec) -> None:
        self.spec = spec

    # -- initialisation ---------------------------------------------------

    def init_task(self, inputs: Mapping, task: Task) -> dict:
        _, i, j, _ = task.key
        spec = self.spec
        tile = spec.tile(i, j)
        ext = tile.alloc_ext()
        gr, gc = tile.global_coords()
        rs, cs = tile.core_slices()
        ext[rs, cs] = spec.problem.initial_values(gr[rs, cs], gc[rs, cs])
        nrows, ncols = spec.problem.shape
        spec.problem.bc.fill_exterior(ext, tile, nrows, ncols)
        return self._publish(ext, tile, t=-1)

    # -- one stencil iteration -----------------------------------------------

    def stencil_task(self, inputs: Mapping, task: Task) -> dict:
        name, i, j, t = task.key
        spec = self.spec
        tile = spec.tile(i, j)
        prev_key = (name, i, j, t - 1)
        ext = np.array(inputs[(prev_key, "tile")])  # writable copy

        # Paste incoming ghost data (iteration-t values).
        for side in SIDES:
            strip = spec.local_strip(tile, side, t)
            if strip is not None:
                producer = self._neighbor_key(name, tile, side, t - 1)
                tile.paste(ext, strip.pad_region(tile.h, tile.w),
                           inputs[(producer, _side_tag(side, deep=False))])
            elif tile.remote[side] and spec.is_refresh(t):
                deep = spec.deep_strip(tile, side)
                producer = self._neighbor_key(name, tile, side, t - 1)
                tile.paste(ext, deep.pad_region(tile.h, tile.w),
                           inputs[(producer, _side_tag(side, deep=True))])
        if spec.is_refresh(t):
            for corner in CORNERS:
                block = spec.corner_block(tile, corner)
                if block is not None:
                    producer = self._diagonal_key(name, tile, corner, t - 1)
                    tile.paste(ext, block.pad_region(tile.h, tile.w),
                               inputs[(producer, _corner_tag(corner))])

        # Jacobi update of core + redundant halo extension.
        region = spec.update_region(tile, t)
        rs, cs = tile.ext_slices(region)
        origin = (tile.r0 - tile.pads[0], tile.c0 - tile.pads[2])
        ext[rs, cs] = apply_stencil_region(
            ext, spec.problem.weights, rs, cs, origin=origin
        )
        if spec.problem.source is not None:
            # Forcing is a global field, so redundantly updated halo
            # cells receive exactly the same contribution their owner
            # applies -- CA equivalence is preserved.
            gr = np.arange(origin[0] + rs.start, origin[0] + rs.stop)
            gc = np.arange(origin[1] + cs.start, origin[1] + cs.stop)
            GR, GC = np.meshgrid(gr, gc, indexing="ij")
            ext[rs, cs] += spec.problem.source_values(GR, GC)
        return self._publish(ext, tile, t)

    # -- helpers -----------------------------------------------------------------

    def _neighbor_key(self, name: str, tile: TileSpec, side: Side, t: int) -> TaskKey:
        ni, nj = self.spec.partition.neighbor(tile.i, tile.j, side)
        return (name, ni, nj, t)

    def _diagonal_key(self, name: str, tile: TileSpec, corner: Corner, t: int) -> TaskKey:
        ni, nj = self.spec.partition.diagonal(tile.i, tile.j, corner)
        return (name, ni, nj, t)

    def _publish(self, ext: np.ndarray, tile: TileSpec, t: int) -> dict:
        """Outputs of the task that just produced iteration ``t + 1``
        values on ``ext``: the array itself plus every strip some
        neighbour consumes at iteration ``t + 1``."""
        spec = self.spec
        outputs: dict = {"tile": ext}
        t_next = t + 1
        if t_next >= spec.problem.iterations:
            return outputs
        part = spec.partition
        for side in SIDES:
            nb = part.neighbor(tile.i, tile.j, side)
            if nb is None:
                continue
            consumer = spec.tile(*nb)
            cside = side.opposite  # the strip lands in this pad of the consumer
            strip = spec.local_strip(consumer, cside, t_next)
            if strip is not None:
                outputs[_side_tag(cside, deep=False)] = tile.extract(
                    ext, strip.source_region(tile.h, tile.w)
                )
            elif consumer.remote[cside] and spec.is_refresh(t_next):
                deep = spec.deep_strip(consumer, cside)
                outputs[_side_tag(cside, deep=True)] = tile.extract(
                    ext, deep.source_region(tile.h, tile.w)
                )
        if spec.is_refresh(t_next):
            for corner in CORNERS:
                diag = part.diagonal(tile.i, tile.j, corner)
                if diag is None:
                    continue
                consumer = spec.tile(*diag)
                ccorner = corner.opposite
                block = spec.corner_block(consumer, ccorner)
                if block is not None:
                    outputs[_corner_tag(ccorner)] = tile.extract(
                        ext, block.source_region(tile.h, tile.w)
                    )
        return outputs


@dataclass(frozen=True)
class BuildResult:
    """A built graph plus the context needed to run and interpret it."""

    graph: TaskGraph
    spec: StencilSpec
    name: str

    def final_keys(self) -> list[tuple[TaskKey, str]]:
        """(task key, tag) pairs under which the engine's results hold
        the final extended arrays."""
        t_last = self.spec.problem.iterations - 1
        return [
            ((self.name, i, j, t_last), "tile")
            for (i, j) in self.spec.partition.tiles()
        ]

    def assemble_grid(self, results: Mapping) -> np.ndarray:
        """Collect the final tile cores into the global grid."""
        nrows, ncols = self.spec.problem.shape
        grid = np.empty((nrows, ncols))
        for (key, tag) in self.final_keys():
            _, i, j, _ = key
            tile = self.spec.tile(i, j)
            ext = results[(key, tag)]
            rs, cs = tile.core_slices()
            grid[tile.r0 : tile.r1, tile.c0 : tile.c1] = ext[rs, cs]
        return grid


def build_stencil_graph(
    spec: StencilSpec,
    machine: MachineSpec,
    cost: KernelCostModel | None = None,
    name: str = "st",
    with_kernels: bool = True,
    boundary_priority: bool = True,
) -> BuildResult:
    """Unroll the dataflow of ``spec`` into a concrete task graph.

    ``with_kernels=False`` builds a timing-only graph (no numpy work),
    which is what the benchmark sweeps use.
    """
    cost = cost or KernelCostModel(machine)
    workers = machine.node.compute_cores
    kernels = StencilKernels(spec) if with_kernels else None
    graph = TaskGraph()
    part = spec.partition
    T = spec.problem.iterations

    for tile in spec.tiles():
        i, j = tile.i, tile.j
        ext_points = tile.ext_shape()[0] * tile.ext_shape()[1]
        ext_bytes = ext_points * ITEMSIZE
        boundary = tile.is_boundary()
        kind_init = "init"
        graph.add_task(
            (name, i, j, -1),
            node=tile.node,
            cost=cost.copy_cost(ext_bytes),
            kernel=kernels.init_task if kernels else None,
            out_nbytes={"tile": 0},
            priority=(T + 1) * 2 + (BOUNDARY_PRIORITY if boundary else 0),
            kind=kind_init,
        )

    # Per (tile, phase) templates: everything except the producer
    # iteration index repeats with period `steps`, so precompute the
    # flow shapes and costs once per phase instead of once per task.
    # Each template entry is (ni, nj, tag, nbytes); costs/points follow.
    stencil_kernel = kernels.stencil_task if kernels else None
    templates: dict[tuple[int, int], list] = {}
    for tile in spec.tiles():
        i, j = tile.i, tile.j
        boundary = tile.is_boundary()
        per_phase = []
        for phase in range(spec.steps):
            refresh = phase == 0
            # Ghost assembly traffic: only the strips are copies the
            # task body pays for; the tile's own read+write is already
            # in the kernel's bytes/point.
            copy_bytes = 0
            flow_templates: list[tuple[int, int, str, int]] = []
            for side in SIDES:
                strip = spec.local_strip(tile, side, phase)
                if strip is not None:
                    nb = part.neighbor(i, j, side)
                    nbytes = spec.strip_nbytes(tile, strip)
                    flow_templates.append((nb[0], nb[1], _side_tag(side, False), nbytes))
                    copy_bytes += nbytes
                elif tile.remote[side] and refresh:
                    deep = spec.deep_strip(tile, side)
                    nb = part.neighbor(i, j, side)
                    nbytes = spec.strip_nbytes(tile, deep)
                    flow_templates.append((nb[0], nb[1], _side_tag(side, True), nbytes))
                    copy_bytes += nbytes
            if refresh:
                for corner in CORNERS:
                    block = spec.corner_block(tile, corner)
                    if block is not None:
                        diag = part.diagonal(i, j, corner)
                        nbytes = block.nbytes(ITEMSIZE)
                        flow_templates.append(
                            (diag[0], diag[1], _corner_tag(corner), nbytes)
                        )
                        copy_bytes += nbytes
            core_pts, redundant_pts = spec.region_points(tile, phase)
            ext_pts = tile.ext_shape()[0] * tile.ext_shape()[1]
            per_phase.append(
                (
                    flow_templates,
                    cost.task_cost(core_pts, redundant_pts, copy_bytes, ext_pts, workers),
                    FLOP_PER_POINT * core_pts,
                    FLOP_PER_POINT * redundant_pts,
                    "boundary" if boundary else "interior",
                    BOUNDARY_PRIORITY if boundary and boundary_priority else 0,
                    tile.node,
                )
            )
        templates[(i, j)] = per_phase

    steps = spec.steps
    for t in range(T):
        phase = t % steps
        prio_base = (T - t) * 2
        for (i, j), per_phase in templates.items():
            flow_templates, task_cost, flops, red_flops, kind, prio_bias, node = per_phase[phase]
            flows = [Flow((name, i, j, t - 1), "tile", 0)]
            for (ni, nj, tag, nbytes) in flow_templates:
                flows.append(Flow((name, ni, nj, t - 1), tag, nbytes))
            graph.add(
                Task(
                    (name, i, j, t),
                    node=node,
                    inputs=tuple(flows),
                    cost=task_cost,
                    flops=flops,
                    redundant_flops=red_flops,
                    kernel=stencil_kernel,
                    out_nbytes={"tile": 0},
                    priority=prio_base + prio_bias,
                    kind=kind,
                )
            )
    return BuildResult(graph=graph.finalize(validate=False), spec=spec, name=name)
