"""The paper's contribution: three stencil implementations and the
unified runner."""

from . import analytic
from .base_parsec import build_base_graph
from .ca_parsec import build_ca_graph
from .dataflow import BuildResult, StencilKernels, build_stencil_graph
from .petsc_jacobi import PetscBuildResult, build_petsc_graph
from .report import RunResult
from .runner import BACKENDS, IMPLEMENTATIONS, MODES, default_tile, run
from .solve import SolveResult, solve_to_tolerance
from .spec import StencilSpec
from .validate import ValidationReport, validate_implementations
from .verify import ScheduleError, verify_schedule

# Re-export the pieces users reach for alongside the runner.
from ..stencil.problem import JacobiProblem
from ..stencil.kernels import StencilWeights
from ..distgrid.boundary import DirichletBC

__all__ = [
    "BACKENDS",
    "BuildResult",
    "MODES",
    "analytic",
    "DirichletBC",
    "IMPLEMENTATIONS",
    "JacobiProblem",
    "PetscBuildResult",
    "RunResult",
    "StencilKernels",
    "StencilSpec",
    "StencilWeights",
    "ValidationReport",
    "build_base_graph",
    "build_ca_graph",
    "build_petsc_graph",
    "build_stencil_graph",
    "default_tile",
    "run",
    "SolveResult",
    "solve_to_tolerance",
    "validate_implementations",
    "ScheduleError",
    "verify_schedule",
]
