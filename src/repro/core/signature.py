"""Shared fingerprint / signature helpers.

Two subsystems key persistent state by "what exactly is this run":
the autotuner cache (:mod:`repro.tuning.cache`) and the solver
service's result cache (:mod:`repro.serve.cache`).  They used to grow
near-duplicate hashing paths; this module is the single home of

* :func:`fingerprint_dataclass` -- short stable hash over *every*
  field of a (nested) dataclass, the scheme
  :meth:`~repro.machine.machine.MachineSpec.fingerprint` uses so that
  editing one calibrated constant invalidates every dependent entry;
* :func:`problem_signature` -- the human-readable identity the tuner
  keys on (extents, iterations, weight family, forcing presence);
* :func:`problem_content_key` / :func:`solve_signature` -- the *full*
  content key the result cache needs: unlike the tuner (where two
  problems with different boundary values share an optimum), serving
  a cached solution grid requires every number that shapes the answer
  -- weights, initial data, boundary, forcing -- to be part of the
  key.  Callable initialisers are hashed by materialising them, so a
  closure and a constant that produce the same grid hash identically.

Keep this module cheap to import: numpy only, no sibling packages
(machine/stencil objects arrive as arguments, duck-typed).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

#: Hex digits of the short hashes (same truncation the tuning cache
#: has always used via ``MachineSpec.fingerprint``).
FINGERPRINT_LEN = 12


def _sha(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def fingerprint_dataclass(obj: Any, length: int = FINGERPRINT_LEN) -> str:
    """Short stable hash over every field of a (nested) dataclass."""
    blob = json.dumps(dataclasses.asdict(obj), sort_keys=True, default=str)
    return _sha(blob.encode())[:length]


def machine_fingerprint(machine: Any, length: int = FINGERPRINT_LEN) -> str:
    """Fingerprint of a :class:`~repro.machine.machine.MachineSpec`
    (node model, network model, node count -- everything)."""
    return fingerprint_dataclass(machine, length=length)


def problem_signature(problem: Any) -> str:
    """Stable identity of what is being solved, as far as *tuning*
    cares: extents, iteration count, stencil-weight family and whether
    a forcing term adds memory traffic.  (Boundary and initial values
    do not move the optimum, so they are deliberately absent.)"""
    nrows, ncols = problem.shape
    return (
        f"{nrows}x{ncols}-it{problem.iterations}"
        f"-{type(problem.weights).__name__}"
        f"-{'src' if problem.source is not None else 'nosrc'}"
    )


def array_digest(arr: np.ndarray) -> str:
    """Content hash of one array (shape + dtype + bytes)."""
    a = np.ascontiguousarray(arr)
    meta = f"{a.shape}:{a.dtype.str}:".encode()
    return _sha(meta + a.tobytes())


def _token(value: Any) -> Any:
    """JSON-serialisable token for one field value.  Arrays hash by
    content; nested dataclasses recurse; callables are rejected (the
    caller materialises them first)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return {"ndarray": array_digest(value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _token(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_token(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _token(v) for k, v in sorted(value.items())}
    if callable(value):
        raise TypeError(
            "callable reached the signature tokenizer; materialise it "
            "into an array first (see problem_content_key)"
        )
    return {"repr": repr(value)}


def problem_content_key(problem: Any) -> dict:
    """Every number that shapes the *answer* of a Jacobi solve, as a
    JSON-safe document.

    Constant initial/boundary/forcing values enter directly; callables
    are materialised onto the grid (``initial_grid`` / ``bc.frame`` /
    ``source_grid``) and hashed by content, so equal data gives equal
    keys regardless of how it was specified.
    """
    nrows, ncols = problem.shape
    doc: dict[str, Any] = {
        "shape": [nrows, ncols],
        "iterations": problem.iterations,
        "weights": _token(problem.weights),
    }
    init = problem.init
    doc["init"] = (
        {"grid": array_digest(problem.initial_grid())}
        if callable(init) else float(init)
    )
    bc_value = problem.bc.value
    doc["bc"] = (
        {"frame": array_digest(problem.bc.frame(nrows, ncols))}
        if callable(bc_value) else float(bc_value)
    )
    source = problem.source
    if source is None:
        doc["source"] = None
    elif callable(source):
        doc["source"] = {"grid": array_digest(problem.source_grid())}
    else:
        doc["source"] = float(source)
    return doc


def passes_token(passes: Any) -> str | None:
    """Lexical normalisation of an IR pipeline spec for keying:
    whitespace stripped, empty segments dropped, ``None`` for "no
    rewrite".  Callers that can afford to import :mod:`repro.ir`
    should prefer ``repro.ir.canonical_pipeline`` (which also renders
    defaulted parameters); this helper keeps the signature module
    import-light for the caches that only compare keys.
    """
    if not passes:
        return None
    segments = [s.strip() for s in str(passes).split(",") if s.strip()]
    return ",".join(segments) or None


def solve_signature(
    problem: Any,
    machine: Any,
    impl: str,
    **params: Any,
) -> str:
    """Content key of one solve: a repeated request with this
    signature must produce a bit-identical solution grid.

    ``params`` carries the solver knobs that change the *arithmetic*
    of the answer (tile, steps, ratio...).  Knobs that only move the
    schedule (policy, jobs, backend) may be included or not at the
    caller's discretion -- the conformance suite proves grids are
    bit-identical across backends, so the serve result cache leaves
    them out.
    """
    doc = {
        "problem": problem_content_key(problem),
        "machine": machine_fingerprint(machine),
        "impl": impl,
        "params": {k: _token(v) for k, v in sorted(params.items())},
    }
    blob = json.dumps(doc, sort_keys=True)
    return _sha(blob.encode())


__all__ = [
    "FINGERPRINT_LEN",
    "array_digest",
    "fingerprint_dataclass",
    "machine_fingerprint",
    "passes_token",
    "problem_content_key",
    "problem_signature",
    "solve_signature",
]
