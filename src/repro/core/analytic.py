"""Closed-form communication counts for the stencil schemes.

The paper's section V reasons about "the number of floating-point
numbers communicated per processor, and the number of messages sent
per processor" analytically; this module provides those closed forms
for any partition, and the tests cross-check them against the task
graphs' static census -- two independent derivations of the same
quantities (formula vs graph enumeration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..distgrid.halo import CORNERS, SIDES
from .spec import ITEMSIZE, StencilSpec


@dataclass(frozen=True)
class CommForecast:
    """Analytic communication volume of one full run."""

    messages: int
    bytes: int
    messages_per_superstep: int
    supersteps: int
    redundant_points: int  # replicated updates over the whole run

    @property
    def megabytes(self) -> float:
        return self.bytes / 1e6


def remote_edges(spec: StencilSpec) -> int:
    """Directed remote tile edges (= messages per exchanging
    iteration of the base scheme)."""
    return sum(
        1
        for tile in spec.tiles()
        for side in SIDES
        if tile.remote[side]
    )


def supersteps(spec: StencilSpec) -> int:
    """Number of remote refreshes in ``spec.problem.iterations``
    iterations (iterations 0, s, 2s, ...)."""
    T = spec.problem.iterations
    return 0 if T == 0 else int(math.ceil(T / spec.steps))


def forecast(spec: StencilSpec) -> CommForecast:
    """Messages, bytes and redundant work of the schedule, closed form.

    For the base scheme (s=1) this is the textbook
    ``edges x iterations`` with one tile-edge of doubles per message;
    for CA it adds the corner blocks and the deep strips' s-fold
    payload, all per superstep.
    """
    n_super = supersteps(spec)
    msgs_per_super = 0
    bytes_per_super = 0
    for tile in spec.tiles():
        for side in SIDES:
            deep = spec.deep_strip(tile, side)
            if deep is not None:
                msgs_per_super += 1
                bytes_per_super += spec.strip_nbytes(tile, deep)
        for corner in CORNERS:
            block = spec.corner_block(tile, corner)
            if block is not None:
                msgs_per_super += 1
                bytes_per_super += block.nbytes(ITEMSIZE)

    # Redundant points: per tile per iteration, the update region
    # exceeds the core by a phase-dependent amount; sum the phases
    # actually executed.
    redundant = 0
    T = spec.problem.iterations
    full_cycles, tail = divmod(T, spec.steps)
    for tile in spec.tiles():
        per_phase = [spec.region_points(tile, phase)[1] for phase in range(spec.steps)]
        redundant += full_cycles * sum(per_phase) + sum(per_phase[:tail])

    return CommForecast(
        messages=msgs_per_super * n_super,
        bytes=bytes_per_super * n_super,
        messages_per_superstep=msgs_per_super,
        supersteps=n_super,
        redundant_points=redundant,
    )


def surface_to_volume(spec: StencilSpec) -> float:
    """Mean remote-edge cells per owned cell per node -- the quantity
    the paper's 2D block distribution minimises.  A 1D strip
    arrangement of the same node count has a strictly larger value
    (for more than two nodes)."""
    part = spec.partition
    total_surface = 0
    for tile in spec.tiles():
        for side in SIDES:
            if tile.remote[side]:
                total_surface += tile.w if side.axis == 0 else tile.h
    return total_surface / float(part.nrows * part.ncols)
