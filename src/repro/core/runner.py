"""Unified front door: run any of the three implementations.

``run(problem, impl=..., machine=..., ...)`` builds the task graph,
runs it on the selected backend and returns a
:class:`~repro.core.report.RunResult`.  Two orthogonal knobs select
how much is real:

``mode`` -- fidelity of the *simulated* backend:

* ``"simulate"`` -- timing-only graph (no numpy kernels), any problem
  size: this is what the benchmark sweeps use;
* ``"execute"`` -- real kernels on real data (small/medium problems),
  same virtual-clock timing, plus the final grid in ``result.grid``.

``backend`` -- what executes the graph:

* ``"sim"`` -- the discrete-event engine (virtual clock, modelled
  cluster), the default;
* ``"threads"`` -- :class:`repro.exec.ThreadedExecutor`: the same
  graph on ``jobs`` real worker threads of this host, wall-clock
  timing, always with real kernels (``mode`` is ignored).
"""

from __future__ import annotations

from typing import Any

from ..exec.backends import BACKENDS
from ..machine.machine import MachineSpec, nacl
from ..petsclite.cost import SpMVCostModel
from ..runtime.engine import Engine
from ..runtime.scheduler import POLICIES
from ..stencil.cost import KernelCostModel
from ..stencil.problem import JacobiProblem
from .base_parsec import build_base_graph
from .ca_parsec import build_ca_graph
from .petsc_jacobi import build_petsc_graph
from .report import RunResult

IMPLEMENTATIONS = ("petsc", "base-parsec", "ca-parsec")
MODES = ("simulate", "execute")


def default_tile(problem: JacobiProblem, machine: MachineSpec) -> int:
    """A reasonable tile size when the caller does not tune one: aim
    for ~25 tiles per node side-dimension-balanced, clamped to the
    paper's sweet-spot range."""
    import math

    per_node_rows = problem.shape[0] / max(1, math.isqrt(machine.nodes))
    guess = int(per_node_rows // 5) or 1
    return max(1, min(guess, 1024))


def _publish_critpath(metrics, report, graph) -> None:
    """When a run was both instrumented and traced, mirror its causal
    critical-path analysis into the registry (critpath_seconds,
    critpath_ratio, critpath_comm_share, per-blame seconds) and refresh
    the report's snapshot so ``result.metrics`` carries the gauges the
    regression gate tracks."""
    if metrics is None or getattr(report, "trace", None) is None:
        return
    from ..obs.critpath import critical_path, publish_critpath_metrics

    publish_critpath_metrics(metrics, critical_path(report.trace, graph))
    report.metrics = metrics.snapshot()


def _publish_ir_metrics(metrics, report) -> None:
    """Mirror a pipeline's per-pass deltas into the registry so the
    regression gate and ``repro trace-diff`` can prove what each pass
    bought (counters only go up: negative deltas clamp to zero and the
    signed totals live on the gauges)."""
    if metrics is None:
        return
    for p in report.passes:
        labels = {"pass": p.name}
        metrics.counter(
            "ir_pass_applied", help="rewrite passes applied"
        ).inc(1, **labels)
        metrics.counter(
            "ir_pass_tasks_removed", help="tasks removed by rewrite passes"
        ).inc(max(0, p.tasks_removed), **labels)
        metrics.counter(
            "ir_pass_messages_saved",
            help="remote messages removed by rewrite passes",
        ).inc(max(0, p.messages_saved), **labels)
        metrics.counter(
            "ir_pass_local_edges_removed",
            help="local edges internalised by rewrite passes",
        ).inc(max(0, p.local_edges_removed), **labels)
    metrics.gauge(
        "ir_tasks_removed", help="pipeline-total task delta (signed)"
    ).set(report.tasks_removed)
    metrics.gauge(
        "ir_messages_saved", help="pipeline-total remote message delta (signed)"
    ).set(report.messages_saved)
    metrics.gauge(
        "ir_remote_bytes_delta", unit="bytes",
        help="pipeline-total remote byte delta (after - before)",
    ).set(report.after.remote_bytes - report.before.remote_bytes)


def run(
    problem: JacobiProblem,
    impl: str = "base-parsec",
    machine: MachineSpec | None = None,
    tile: int | str | None = None,
    steps: int | str = 15,
    ratio: float = 1.0,
    mode: str = "simulate",
    policy: str = "priority",
    overlap: bool | None = None,
    trace: bool = False,
    boundary_priority: bool = True,
    include_redundant: bool | None = None,
    pgrid=None,
    backend: str = "sim",
    jobs: int | None = None,
    procs: int | None = None,
    tune: bool = False,
    tune_budget: int | None = None,
    tune_backend: str | None = None,
    tune_cache=None,
    tune_seed: int = 0,
    metrics=None,
    on_executor=None,
    executor_factory=None,
    chaos=None,
    passes: str | None = None,
) -> RunResult:
    """Run ``problem`` with one implementation on one machine model.

    Parameters mirror the paper's experiment knobs: ``tile`` (Fig. 6),
    ``steps`` (Fig. 9, CA only), ``ratio`` (Fig. 8's kernel adjustment),
    ``trace`` (Fig. 10).  ``overlap`` defaults to the implementation's
    natural setting: a dedicated comm thread for the PaRSEC versions,
    blocking worker-side MPI for PETSc.  ``backend="threads"`` executes
    the graph for real on ``jobs`` worker threads (defaults to every
    core of this host) and reports wall-clock performance.
    ``backend="processes"`` runs each simulated node as a real OS
    process (``procs`` of them, defaulting to ``machine.nodes``, each
    with ``jobs`` worker threads) and exchanges node-boundary halos as
    real pickled messages over pipes; passing ``procs`` resizes the
    machine so the process count *is* the node count.

    ``tile="auto"`` / ``steps="auto"`` hand the knob to the autotuner
    (:mod:`repro.tuning`): a cached winner for this (machine
    fingerprint, problem, impl) is consumed directly; otherwise
    ``tune=True`` spends ``tune_budget`` runs (default 16) on a
    successive-halving search via ``tune_backend`` (default the
    simulator), while without ``tune`` the resolution falls back to
    the free model-only pick with a warning.  ``tune_cache`` is a
    cache path/object, or ``False`` to disable persistence.

    ``metrics`` accepts a :class:`repro.obs.MetricRegistry`; every
    backend publishes its end-of-run counters/gauges into it and the
    resulting snapshot is exposed as ``result.metrics``.
    ``on_executor`` is called with the live engine/executor just
    before the run starts, so a monitor can poll its ``progress()``.

    ``executor_factory`` is the warm-pool reuse hook for the real
    backends: when given, it is called as ``factory(graph, backend=...,
    jobs=..., procs=..., policy=..., trace=..., metrics=...)`` and must
    return a ready executor (typically a pooled instance re-armed via
    its ``reset()`` contract) instead of this function constructing a
    fresh one.  The simulator builds no pool, so combining a factory
    with ``backend="sim"`` is an error.

    ``chaos`` accepts a :class:`repro.chaos.ChaosContext`: the built
    graph is instrumented in place (fault injection at kernel entry
    and message delivery, grid checkpoints at CA exchange boundaries)
    before the backend runs it.  A fault-free run pays nothing -- the
    backends only consult the context when one is attached.

    ``passes`` rewrites the built graph through the IR pass pipeline
    (:mod:`repro.ir`) before any backend sees it -- e.g.
    ``passes="fuse,coarsen:factor=4"``.  Every pass is verified
    against its declared invariants, the per-pass evidence lands in
    ``result.pass_reports``, and the canonical pipeline spec is
    recorded in ``result.params["passes"]``.  Mutually exclusive with
    ``chaos`` (fault hooks instrument the original kernels, which a
    rewrite may merge away).

    All selector strings are validated here, before any graph is
    built, so a typo fails with the list of choices instead of a
    confusing error deep in graph construction.
    """
    machine = machine or nacl(4)
    if impl not in IMPLEMENTATIONS:
        raise ValueError(f"unknown impl {impl!r}; choices: {IMPLEMENTATIONS}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; choices: {MODES}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choices: {BACKENDS}")
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; choices: {tuple(sorted(POLICIES))}"
        )
    pass_list = None
    if passes:
        from ..ir import parse_pipeline

        # Parsed up front so a typo fails here, not after the build.
        pass_list = parse_pipeline(passes) or None
    if pass_list is not None and chaos is not None:
        raise ValueError(
            "passes and chaos cannot combine: chaos instruments the "
            "builder's original kernels and checkpoint boundaries, which "
            "a rewrite pass may merge or wrap away"
        )
    if isinstance(tile, str) and tile != "auto":
        raise ValueError(f"tile must be an int, None or 'auto', got {tile!r}")
    if isinstance(steps, str) and steps != "auto":
        raise ValueError(f"steps must be an int or 'auto', got {steps!r}")
    tune_source = None
    if tune or tile == "auto" or steps == "auto":
        if impl == "petsc":
            raise ValueError(
                "autotuning applies to the PaRSEC implementations; "
                "petsc has no tile/step knobs"
            )
        from ..tuning.search import resolve_auto

        budget = tune_budget if tune_budget is not None else (16 if tune else 0)
        tile, steps, tune_info = resolve_auto(
            problem, impl=impl, machine=machine, tile=tile, steps=steps,
            backend=tune_backend or "sim", budget=budget, cache=tune_cache,
            seed=tune_seed, jobs=jobs, metrics=metrics,
        )
        tune_source = tune_info["source"]
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be a positive worker count, got {jobs}")
    if procs is not None:
        if backend != "processes":
            raise ValueError(
                "procs selects the node-process count of backend='processes'; "
                f"it does not apply to backend={backend!r}"
            )
        if procs < 1:
            raise ValueError(f"procs must be a positive process count, got {procs}")
        if procs != machine.nodes:
            machine = machine.with_nodes(procs)
    with_kernels = mode == "execute" or backend in ("threads", "processes")

    params: dict[str, Any] = {"mode": mode, "policy": policy}
    if tune_source is not None:
        params["tune_source"] = tune_source
    if impl == "petsc":
        if ratio != 1.0:
            raise ValueError("the kernel adjustment ratio applies to the "
                             "PaRSEC versions only (paper section VI-D)")
        overlap = False if overlap is None else overlap
        built = build_petsc_graph(
            problem, machine, cost=SpMVCostModel(machine), with_kernels=with_kernels
        )
        params.update(ranks=machine.nodes * machine.node.cores, overlap=overlap)
    else:
        overlap = True if overlap is None else overlap
        tile = tile if tile is not None else default_tile(problem, machine)
        cost = KernelCostModel(
            machine, ratio=ratio, include_redundant=include_redundant
        )
        if impl == "base-parsec":
            built = build_base_graph(
                problem,
                machine,
                tile=tile,
                cost=cost,
                with_kernels=with_kernels,
                boundary_priority=boundary_priority,
                pgrid=pgrid,
            )
            params.update(tile=tile, ratio=ratio, overlap=overlap)
        else:
            built = build_ca_graph(
                problem,
                machine,
                tile=tile,
                steps=steps,
                cost=cost,
                with_kernels=with_kernels,
                boundary_priority=boundary_priority,
                pgrid=pgrid,
            )
            params.update(tile=tile, steps=steps, ratio=ratio, overlap=overlap)

    pipe_report = None
    if pass_list is not None:
        from ..ir import PassContext, PassManager

        manager = PassManager(pass_list)
        ctx = PassContext(
            machine=machine,
            with_kernels=with_kernels,
            ratio=ratio,
            include_redundant=include_redundant,
        )
        built, pipe_report = manager.run(built, ctx)
        params["passes"] = manager.spec
        _publish_ir_metrics(metrics, pipe_report)

    if metrics is not None:
        # The static census is the ground truth the dynamic message
        # counters are judged against (`repro stats` prints both).
        census = built.graph.census()
        metrics.gauge(
            "census_messages", help="remote messages the graph implies"
        ).set(census.remote_messages)
        metrics.gauge(
            "census_message_bytes", unit="bytes",
            help="remote payload the graph implies",
        ).set(census.remote_bytes)

    if executor_factory is not None and backend == "sim":
        raise ValueError(
            "executor_factory is the warm-pool hook of the real backends; "
            "it does not apply to backend='sim'"
        )

    if chaos is not None:
        if not with_kernels:
            raise ValueError(
                "chaos needs executable kernels; use mode='execute' or a "
                "real backend"
            )
        chaos.attach(built, backend=backend, machine=machine)

    if backend == "threads":
        if executor_factory is not None:
            executor = executor_factory(
                built.graph, backend="threads", jobs=jobs, policy=policy,
                trace=trace, metrics=metrics,
            )
        else:
            from ..exec.executor import ThreadedExecutor

            executor = ThreadedExecutor(
                built.graph, jobs=jobs, policy=policy, trace=trace,
                metrics=metrics,
            )
        if on_executor is not None:
            on_executor(executor)
        report = executor.run()
        _publish_critpath(metrics, report, built.graph)
        params.update(backend="threads", jobs=executor.jobs)
        grid = built.assemble_grid(report.results)
        return RunResult(
            impl=impl,
            problem=problem,
            machine=machine,
            engine=report,
            params=params,
            grid=grid,
            graph=built.graph,
            pass_reports=pipe_report,
        )

    if backend == "processes":
        if executor_factory is not None:
            executor = executor_factory(
                built.graph, backend="processes", procs=machine.nodes,
                jobs=jobs, policy=policy, trace=trace, metrics=metrics,
            )
        else:
            from ..exec.procs import ProcessExecutor

            executor = ProcessExecutor(
                built.graph, procs=machine.nodes, jobs=jobs, policy=policy,
                trace=trace, metrics=metrics,
            )
        if chaos is not None:
            # Forked node processes inherit the context (and its wrapped
            # kernels) in memory; couriers consult it for drop faults and
            # the watcher stamps NodeLostError with the latest checkpoint.
            executor.chaos = chaos
            executor.checkpoint_store = chaos.store
        if on_executor is not None:
            on_executor(executor)
        report = executor.run()
        _publish_critpath(metrics, report, built.graph)
        params.update(backend="processes", procs=executor.procs, jobs=executor.jobs)
        grid = built.assemble_grid(report.results)
        return RunResult(
            impl=impl,
            problem=problem,
            machine=machine,
            engine=report,
            params=params,
            grid=grid,
            graph=built.graph,
            pass_reports=pipe_report,
        )

    engine = Engine(
        built.graph,
        machine,
        policy=policy,
        execute=with_kernels,
        overlap=overlap,
        trace=trace,
        metrics=metrics,
        chaos=chaos,
    )
    if on_executor is not None:
        on_executor(engine)
    report = engine.run()
    _publish_critpath(metrics, report, built.graph)
    grid = built.assemble_grid(report.results) if with_kernels else None
    return RunResult(
        impl=impl,
        problem=problem,
        machine=machine,
        engine=report,
        params=params,
        grid=grid,
        graph=built.graph,
        pass_reports=pipe_report,
    )
