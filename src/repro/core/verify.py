"""Static verification of the CA communication schedule.

Independently of the numerics, this module proves (by exhaustive
cell-age simulation) that a :class:`~repro.core.spec.StencilSpec`'s
schedule never reads stale data: every ghost strip is cut from cells
that actually hold the right iteration's values, and every update
region is fully surrounded by valid cells.  It is the tool that
catches subtle PA1 bugs -- a missing corner block, a strip one cell
too short, an off-by-one in the shrinking halo -- *before* they show
up as wrong numbers, and it runs in O(cells x iterations) without any
floating point.

Each cell of each tile's extended array carries the iteration index of
the value it currently holds (``AGE_BC`` for time-invariant Dirichlet
cells, ``AGE_GARBAGE`` for never-written pads).  Iterations replay the
exact paste/update sequence of the real kernels, checking ages instead
of computing values.
"""

from __future__ import annotations

import numpy as np

from ..distgrid.halo import CORNERS, SIDES
from .spec import StencilSpec

AGE_GARBAGE = -(10**9)
AGE_BC = 10**9


class ScheduleError(AssertionError):
    """The communication schedule would read stale or garbage data."""


def _initial_ages(spec: StencilSpec) -> dict:
    nrows, ncols = spec.problem.shape
    ages = {}
    for tile in spec.tiles():
        age = np.full(tile.ext_shape(), AGE_GARBAGE, dtype=np.int64)
        rs, cs = tile.core_slices()
        age[rs, cs] = 0
        gr, gc = tile.global_coords()
        outside = (gr < 0) | (gr >= nrows) | (gc < 0) | (gc >= ncols)
        age[outside] = AGE_BC
        ages[tile.key] = age
    return ages


def _require(cond: bool, what: str, tile, t: int) -> None:
    if not cond:
        raise ScheduleError(f"iteration {t}, tile {tile.key}: {what}")


def _check_source(age: np.ndarray, tile, region, t: int, what: str) -> None:
    rs, cs = tile.ext_slices(region)
    block = age[rs, cs]
    ok = (block == t) | (block == AGE_BC)
    if not ok.all():
        worst = int(block.min())
        raise ScheduleError(
            f"iteration {t}, tile {tile.key}: {what} would ship cells of "
            f"age {worst} where iteration {t} values are required "
            f"(region {region})"
        )


def verify_schedule(spec: StencilSpec, iterations: int | None = None) -> int:
    """Replay ``iterations`` steps of the schedule, checking validity.

    Returns the number of cell-checks performed.  Raises
    :class:`ScheduleError` on the first stale read.
    """
    T = spec.problem.iterations if iterations is None else iterations
    ages_prev = _initial_ages(spec)
    part = spec.partition
    checks = 0

    for t in range(T):
        ages_next = {}
        for tile in spec.tiles():
            age = ages_prev[tile.key].copy()

            # Paste incoming ghosts, verifying the producer-side cells.
            for side in SIDES:
                strip = spec.local_strip(tile, side, t)
                if strip is not None:
                    nb = part.neighbor(tile.i, tile.j, side)
                    producer = spec.tile(*nb)
                    src_region = strip.source_region(producer.h, producer.w)
                    _check_source(ages_prev[producer.key], producer, src_region,
                                  t, f"local strip into {side.name}")
                    rs, cs = tile.ext_slices(strip.pad_region(tile.h, tile.w))
                    age[rs, cs] = t
                    checks += (rs.stop - rs.start) * (cs.stop - cs.start)
                elif tile.remote[side] and spec.is_refresh(t):
                    deep = spec.deep_strip(tile, side)
                    nb = part.neighbor(tile.i, tile.j, side)
                    producer = spec.tile(*nb)
                    src_region = deep.source_region(producer.h, producer.w)
                    _check_source(ages_prev[producer.key], producer, src_region,
                                  t, f"deep strip into {side.name}")
                    rs, cs = tile.ext_slices(deep.pad_region(tile.h, tile.w))
                    age[rs, cs] = t
                    checks += (rs.stop - rs.start) * (cs.stop - cs.start)
            if spec.is_refresh(t):
                for corner in CORNERS:
                    block = spec.corner_block(tile, corner)
                    if block is None:
                        continue
                    diag = part.diagonal(tile.i, tile.j, corner)
                    producer = spec.tile(*diag)
                    src_region = block.source_region(producer.h, producer.w)
                    _check_source(ages_prev[producer.key], producer, src_region,
                                  t, f"corner block {corner.name}")
                    rs, cs = tile.ext_slices(block.pad_region(tile.h, tile.w))
                    age[rs, cs] = t
                    checks += (rs.stop - rs.start) * (cs.stop - cs.start)

            # The 5-point update reads the region itself plus its four
            # 1-deep side aprons -- a plus shape, never the diagonal
            # ring corners.
            (ra, rb), (ca, cb) = spec.update_region(tile, t)
            read_regions = (
                ((ra, rb), (ca, cb)),
                ((ra - 1, ra), (ca, cb)),  # north apron
                ((rb, rb + 1), (ca, cb)),  # south apron
                ((ra, rb), (ca - 1, ca)),  # west apron
                ((ra, rb), (cb, cb + 1)),  # east apron
            )
            for region in read_regions:
                rs, cs = tile.ext_slices(region)
                read = age[rs, cs]
                ok = (read == t) | (read == AGE_BC)
                if not ok.all():
                    stale = int(read[~ok].max())
                    raise ScheduleError(
                        f"iteration {t}, tile {tile.key}: update of region "
                        f"(({ra}, {rb}), ({ca}, {cb})) reads a cell of age "
                        f"{stale} in {region} (wanted {t})"
                    )
                checks += read.size
            urs, ucs = tile.ext_slices(((ra, rb), (ca, cb)))
            age[urs, ucs] = t + 1
            ages_next[tile.key] = age
        ages_prev = ages_next

    # Terminal invariant: every core holds iteration-T values.
    for tile in spec.tiles():
        rs, cs = tile.core_slices()
        _require(
            bool((ages_prev[tile.key][rs, cs] == T).all()),
            f"final core age != {T}", tile, T,
        )
        checks += tile.h * tile.w
    return checks
