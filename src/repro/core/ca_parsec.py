"""CA-PaRSEC: the communication-avoiding tiled stencil (section IV-B2).

Same 2D-block + tile decomposition as the base version, but
node-boundary tiles carry ``steps``-deep ghost regions (plus corner
blocks from the diagonal neighbours) and receive remote data only once
per ``steps`` iterations, performing redundant updates of the
replicated halo in between -- Demmel et al.'s PA1 scheme.  Interior
tiles are untouched: they keep 1-deep ghosts and per-iteration local
copies, so the extra memory cost is confined to the node surface.
"""

from __future__ import annotations

from ..machine.machine import MachineSpec
from ..stencil.cost import KernelCostModel
from ..stencil.problem import JacobiProblem
from .dataflow import BuildResult, build_stencil_graph
from .spec import StencilSpec


def build_ca_graph(
    problem: JacobiProblem,
    machine: MachineSpec,
    tile: int,
    steps: int,
    cost: KernelCostModel | None = None,
    with_kernels: bool = True,
    boundary_priority: bool = True,
    pgrid=None,
) -> BuildResult:
    """Build the CA-PaRSEC task graph with PA1 step size ``steps``.

    ``steps`` must not exceed the smallest tile edge (strips are cut
    from a single neighbouring tile); the paper uses s = 15 with tiles
    of 288 (NaCL) and 864 (Stampede2).
    """
    if steps < 1:
        raise ValueError("step size must be >= 1")
    spec = StencilSpec.create(problem, nodes=machine.nodes, tile=tile, steps=steps,
                              pgrid=pgrid)
    return build_stencil_graph(
        spec,
        machine,
        cost=cost,
        name="ca",
        with_kernels=with_kernels,
        boundary_priority=boundary_priority,
    )
