"""Cross-implementation validation helpers.

The reproduction's central numerical invariant: for any problem,
machine layout, tile size and step size,

    reference == base-PaRSEC == CA-PaRSEC(s)  (bit-exact)
    reference ~= PETSc                        (FP-association only)

(The SpMV accumulates the five weighted terms in CSR column order
rather than the kernel's fixed N/S/W/E order, so PETSc agrees to
rounding, not bit-for-bit.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.machine import MachineSpec, nacl
from ..stencil.problem import JacobiProblem
from .runner import run

#: FP-association tolerance for the SpMV path.
PETSC_RTOL = 1e-12


@dataclass(frozen=True)
class ValidationReport:
    """Max |error| of each implementation against the reference."""

    base_error: float
    ca_error: float
    petsc_error: float
    scale: float

    @property
    def ok(self) -> bool:
        tol = PETSC_RTOL * max(self.scale, 1.0)
        return (
            self.base_error == 0.0
            and self.ca_error == 0.0
            and self.petsc_error <= tol
        )


def validate_implementations(
    problem: JacobiProblem,
    machine: MachineSpec | None = None,
    tile: int = 8,
    steps: int = 3,
) -> ValidationReport:
    """Execute all three implementations on ``problem`` and compare to
    the single-array reference solver."""
    machine = machine or nacl(4)
    ref = problem.reference_solution()
    scale = float(np.max(np.abs(ref))) if ref.size else 0.0
    base = run(problem, impl="base-parsec", machine=machine, tile=tile, mode="execute")
    ca = run(
        problem, impl="ca-parsec", machine=machine, tile=tile, steps=steps, mode="execute"
    )
    petsc = run(problem, impl="petsc", machine=machine, mode="execute")
    return ValidationReport(
        base_error=float(np.max(np.abs(base.grid - ref))),
        ca_error=float(np.max(np.abs(ca.grid - ref))),
        petsc_error=float(np.max(np.abs(petsc.grid - ref))),
        scale=scale,
    )
