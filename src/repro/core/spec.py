"""Shared geometry/schedule algebra of the tiled stencil dataflow.

Both PaRSEC-style implementations (base and communication-avoiding)
are instances of one scheme, parameterized by the step size ``s``:

* every tile has ghost pads: depth ``s`` on sides facing a *remote*
  neighbour, depth 1 elsewhere (the paper's memory layout);
* iterations are grouped in supersteps of ``s``; at iterations
  ``t % s == 0`` remote sides receive an ``s``-deep strip from the
  facing neighbour plus corner blocks from the diagonal neighbours
  (PA1's replicated data);
* at every iteration each tile updates its core *plus* ``u(t) =
  s - 1 - (t % s)`` extra layers into each remote-side pad (the
  redundant work that buys s-fewer messages);
* local sides exchange 1-deep strips every iteration; those strips
  extend ``u(t)`` cells into the remote-side pad range along the
  perpendicular axis, because neighbours along a node edge redundantly
  compute that halo region too.

``s = 1`` degenerates exactly to the base version: pads of depth 1,
one exchange per iteration, no redundant work and no corner blocks.

Everything here is a pure function of (tile coords, side/corner,
iteration), so the graph builder and the executing kernels derive the
byte-identical strip shapes from one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..distgrid.halo import SIDES, Corner, CornerSpec, Side, StripSpec
from ..distgrid.partition import GridPartition, ProcessGrid
from ..distgrid.tile import TileSpec
from ..stencil.problem import JacobiProblem

#: float64 payloads everywhere.
ITEMSIZE = 8


@dataclass(frozen=True)
class StencilSpec:
    """The static description one builder/kernel pair shares."""

    problem: JacobiProblem
    partition: GridPartition
    steps: int = 1

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("step size must be >= 1")
        min_dim = self.partition.min_tile_dim()
        if self.steps > min_dim:
            raise ValueError(
                f"step size {self.steps} exceeds the smallest tile edge "
                f"{min_dim}; PA1 strips must come from a single tile"
            )

    @classmethod
    def create(
        cls,
        problem: JacobiProblem,
        nodes: int,
        tile: int,
        steps: int = 1,
        pgrid: ProcessGrid | None = None,
    ) -> "StencilSpec":
        pgrid = pgrid or ProcessGrid.square(nodes)
        nrows, ncols = problem.shape
        partition = GridPartition(nrows, ncols, pgrid, tile)
        return cls(problem=problem, partition=partition, steps=steps)

    # -- tiles ------------------------------------------------------------

    def tile(self, i: int, j: int) -> TileSpec:
        return _tile_spec(self.partition, self.steps, i, j)

    def tiles(self):
        for (i, j) in self.partition.tiles():
            yield self.tile(i, j)

    # -- superstep schedule --------------------------------------------------

    def is_refresh(self, t: int) -> bool:
        """True when iteration ``t`` starts a superstep (remote ghost
        data arrives before its update)."""
        return t % self.steps == 0

    def halo_extension(self, t: int) -> int:
        """u(t): how many pad layers a tile updates into each remote
        side at iteration ``t``."""
        return self.steps - 1 - (t % self.steps)

    def update_region(self, tile: TileSpec, t: int):
        """Tile-relative region updated at iteration ``t``: the core
        plus u(t) layers into every remote-side pad."""
        u = self.halo_extension(t)
        un = u if tile.remote[Side.NORTH] else 0
        us = u if tile.remote[Side.SOUTH] else 0
        uw = u if tile.remote[Side.WEST] else 0
        ue = u if tile.remote[Side.EAST] else 0
        return ((-un, tile.h + us), (-uw, tile.w + ue))

    def region_points(self, tile: TileSpec, t: int) -> tuple[int, int]:
        """(useful core points, redundant halo points) at iteration t."""
        (ra, rb), (ca, cb) = self.update_region(tile, t)
        total = (rb - ra) * (cb - ca)
        core = tile.h * tile.w
        return core, total - core

    # -- strips ----------------------------------------------------------------

    def local_strip(self, consumer: TileSpec, side: Side, t_consumer: int) -> StripSpec | None:
        """The 1-deep strip ``consumer`` pastes into its ``side`` pad at
        iteration ``t_consumer`` (None when that side is remote, has no
        neighbour, or nothing flows this iteration).

        At refresh iterations the strip covers the bare core span (the
        pad's perpendicular extensions are covered by the remote corner
        blocks); otherwise it extends u(t_consumer) cells into each
        *remote* perpendicular pad, data the producer computed
        redundantly at iteration ``t_consumer - 1``.
        """
        if consumer.remote[side] or not consumer.has_neighbor[side]:
            return None
        ext = 0 if self.is_refresh(t_consumer) else self.halo_extension(t_consumer)
        if side.axis == 0:
            perp_lo, perp_hi = Side.WEST, Side.EAST
        else:
            perp_lo, perp_hi = Side.NORTH, Side.SOUTH
        return StripSpec(
            side=side,
            depth=1,
            ext_lo=ext if consumer.remote[perp_lo] else 0,
            ext_hi=ext if consumer.remote[perp_hi] else 0,
        )

    def deep_strip(self, consumer: TileSpec, side: Side) -> StripSpec | None:
        """The s-deep remote strip pasted into ``side`` at refresh
        iterations (None when the side is not remote)."""
        if not consumer.remote[side]:
            return None
        return StripSpec(side=side, depth=self.steps)

    def corner_block(self, consumer: TileSpec, corner: Corner) -> CornerSpec | None:
        """The corner block pasted at refresh iterations (None when not
        needed: base scheme, no diagonal tile, or neither adjacent side
        remote)."""
        if self.steps == 1:
            return None
        row_side, col_side = corner.sides
        if not (consumer.remote[row_side] or consumer.remote[col_side]):
            return None
        if self.partition.diagonal(consumer.i, consumer.j, corner) is None:
            return None
        return CornerSpec(
            corner=corner,
            depth_r=consumer.pad(row_side),
            depth_c=consumer.pad(col_side),
        )

    # -- flow sizes ---------------------------------------------------------------

    def strip_nbytes(self, consumer: TileSpec, strip: StripSpec) -> int:
        return strip.nbytes(consumer.h, consumer.w, ITEMSIZE)

    # -- totals (for reports / sanity checks) -----------------------------------

    def counts(self) -> dict[str, int]:
        stats = self.partition.counts()
        stats["steps"] = self.steps
        stats["iterations"] = self.problem.iterations
        return stats


@lru_cache(maxsize=262144)
def _tile_spec(partition: GridPartition, steps: int, i: int, j: int) -> TileSpec:
    """Build the TileSpec for global tile (i, j): pads of depth
    ``steps`` on remote sides, 1 elsewhere."""
    r0, r1 = partition.tile_rows(i)
    c0, c1 = partition.tile_cols(j)
    remote = tuple(partition.is_remote(i, j, s) for s in SIDES)
    has_neighbor = tuple(partition.neighbor(i, j, s) is not None for s in SIDES)
    pads = tuple(steps if remote[s] else 1 for s in SIDES)
    return TileSpec(
        i=i,
        j=j,
        r0=r0,
        r1=r1,
        c0=c0,
        c1=c1,
        node=partition.owner(i, j),
        pads=pads,
        remote=remote,
        has_neighbor=has_neighbor,
    )
