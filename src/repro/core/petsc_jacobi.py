"""The PETSc-style baseline as a task graph: SpMV Jacobi iteration.

One task per (rank, iteration), one MPI rank per core (the paper's
PETSc configuration).  Each task multiplies its row block (diagonal +
off-diagonal CSR) and adds the Dirichlet right-hand side; ghost
entries of the previous iterate flow in from their owner ranks.  The
graph runs with ``overlap=False`` workers-do-communication semantics
by default in the runner, matching PETSc's two-sided MPI without a
dedicated progress thread (PETSc still overlaps the scatter with the
diagonal block multiply, which the engine's dataflow ordering gives
for free: interior work needs no remote input).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..machine.machine import MachineSpec
from ..petsclite.cost import SpMVCostModel
from ..petsclite.da import ghost_window_groups, jacobi_operator, natural_layout
from ..petsclite.vec import VecLayout
from ..runtime.graph import TaskGraph
from ..runtime.task import Flow, Task
from ..stencil.kernels import FLOP_PER_POINT
from ..stencil.problem import JacobiProblem


class PetscKernels:
    """Executable bodies of the SpMV tasks (execute mode only)."""

    def __init__(self, problem: JacobiProblem, nranks: int) -> None:
        self.problem = problem
        self.mat, self.rhs = jacobi_operator(problem, nranks)
        self.layout = self.mat.row_layout
        source = problem.source_grid()
        if source is not None:
            flat = source.ravel()
            for rank in range(nranks):
                lo, hi = self.layout.range_of(rank)
                self.rhs.locals[rank] = self.rhs.locals[rank] + flat[lo:hi]
        grid = problem.initial_grid().ravel()
        self.x0 = [
            grid[slice(*self.layout.range_of(r))].copy() for r in range(nranks)
        ]

    def _sends(self, rank: int, x_local: np.ndarray) -> dict:
        """Ghost pieces of this rank's fresh iterate, one per consumer."""
        out = {}
        r0, _ = self.layout.range_of(rank)
        for (src, dst), send_idx in self.mat.scatter.messages.items():
            if src == rank:
                out[f"g{dst}"] = x_local[send_idx - r0]
        return out

    def init_task(self, inputs: Mapping, task: Task) -> dict:
        _, rank, _ = task.key
        x = self.x0[rank]
        return {"x": x, **self._sends(rank, x)}

    def spmv_task(self, inputs: Mapping, task: Task) -> dict:
        name, rank, t = task.key
        x_local = inputs[((name, rank, t - 1), "x")]
        needed = self.mat.scatter.needed[rank]
        ghost = np.empty(needed.size)
        for (src, dst), send_idx in self.mat.scatter.messages.items():
            if dst == rank:
                piece = inputs[((name, src, t - 1), f"g{rank}")]
                ghost[np.searchsorted(needed, send_idx)] = piece
        x_new = self.mat.apply_blocks(rank, x_local, ghost)
        x_new += self.rhs.local(rank)
        return {"x": x_new, **self._sends(rank, x_new)}


@dataclass(frozen=True)
class PetscBuildResult:
    """Graph + context for a PETSc-style run."""

    graph: TaskGraph
    problem: JacobiProblem
    layout: VecLayout
    name: str
    ranks_per_node: int

    def assemble_grid(self, results: Mapping) -> np.ndarray:
        t_last = self.problem.iterations - 1
        pieces = [
            results[((self.name, rank, t_last), "x")]
            for rank in range(self.layout.nranks)
        ]
        return np.concatenate(pieces).reshape(self.problem.shape)


def build_petsc_graph(
    problem: JacobiProblem,
    machine: MachineSpec,
    cost: SpMVCostModel | None = None,
    name: str = "sp",
    with_kernels: bool = True,
) -> PetscBuildResult:
    """Unroll the SpMV Jacobi iteration over one rank per core.

    ``with_kernels=False`` builds the timing-only graph from the
    analytic ghost census (no matrix assembly), which is how the
    paper-sized sweeps run.
    """
    cost = cost or SpMVCostModel(machine)
    ranks_per_node = machine.node.cores
    nranks = machine.nodes * ranks_per_node
    nrows, ncols = problem.shape
    layout = natural_layout(nrows, ncols, nranks)
    T = problem.iterations

    kernels = PetscKernels(problem, nranks) if with_kernels else None
    if kernels is not None:
        groups_of = [
            {
                src: int(idx.size)
                for (src, dst), idx in kernels.mat.scatter.messages.items()
                if dst == rank
            }
            for rank in range(nranks)
        ]
    else:
        groups_of = [ghost_window_groups(layout, rank, ncols) for rank in range(nranks)]

    graph = TaskGraph()
    for rank in range(nranks):
        graph.add_task(
            (name, rank, -1),
            node=rank // ranks_per_node,
            cost=cost.task_cost(layout.local_size(rank)) * 0.5,
            kernel=kernels.init_task if kernels else None,
            out_nbytes={"x": 0},
            priority=T + 1,
            kind="init",
        )
    for t in range(T):
        for rank in range(nranks):
            flows = [Flow((name, rank, t - 1), "x", 0)]
            for src, count in sorted(groups_of[rank].items()):
                flows.append(Flow((name, src, t - 1), f"g{rank}", count * 8))
            graph.add_task(
                (name, rank, t),
                node=rank // ranks_per_node,
                inputs=tuple(flows),
                cost=cost.task_cost(layout.local_size(rank)),
                flops=FLOP_PER_POINT * layout.local_size(rank),
                kernel=kernels.spmv_task if kernels else None,
                out_nbytes={"x": 0},
                priority=T - t,
                kind="spmv",
            )
    return PetscBuildResult(
        graph=graph.finalize(validate=False),
        problem=problem,
        layout=layout,
        name=name,
        ranks_per_node=ranks_per_node,
    )
