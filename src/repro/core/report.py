"""Run results: performance metrics plus (optionally) the final grid."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..machine.machine import MachineSpec
from ..runtime.engine import EngineReport
from ..runtime.graph import TaskGraph
from ..runtime.trace import Trace
from ..stencil.problem import JacobiProblem


@dataclass
class RunResult:
    """Outcome of one :func:`repro.core.runner.run` call.

    ``elapsed`` is *virtual* (modelled) seconds on the simulated
    backend and measured *wall-clock* seconds when the run used
    ``backend="threads"``; ``gflops`` divides the problem's nominal
    useful FLOP (9 n^2 per iteration) by it, exactly how the paper
    computes every GFLOP/s figure -- redundant CA work and
    kernel-ratio reductions never change the numerator.
    """

    impl: str
    problem: JacobiProblem
    machine: MachineSpec
    engine: EngineReport
    params: dict[str, Any] = field(default_factory=dict)
    grid: np.ndarray | None = None
    #: The executed task graph, kept so causal analyses (critical
    #: path, trace diffing) can join the trace back onto its
    #: dependencies without rebuilding the graph.
    graph: TaskGraph | None = None
    #: The :class:`repro.ir.PipelineReport` when the run rewrote the
    #: graph through ``passes=...`` -- per-pass before/after census
    #: evidence; None for an unrewritten run.
    pass_reports: Any = None

    @property
    def elapsed(self) -> float:
        return self.engine.elapsed

    @property
    def gflops(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.problem.total_flops / self.elapsed / 1e9

    @property
    def messages(self) -> int:
        return self.engine.messages

    @property
    def message_bytes(self) -> int:
        return self.engine.message_bytes

    @property
    def trace(self) -> Trace | None:
        return self.engine.trace

    @property
    def metrics(self):
        """The :class:`repro.obs.MetricsSnapshot` published by the
        backend, or ``None`` when the run was not instrumented."""
        return getattr(self.engine, "metrics", None)

    @property
    def redundant_fraction(self) -> float:
        """Redundant FLOP as a fraction of useful FLOP (the price CA
        pays for fewer messages)."""
        useful = self.engine.useful_flops
        if useful <= 0:
            return 0.0
        return self.engine.redundant_flops / useful

    @property
    def backend(self) -> str:
        """Which backend produced the numbers (``"sim"`` unless the
        run asked for real execution)."""
        return self.params.get("backend", "sim")

    def occupancy(self) -> float:
        """Mean compute-worker occupancy across nodes (Fig. 10's
        comparison metric).  For a threads- or processes-backend run
        this is the measured busy fraction of the real worker threads
        (averaged over every node process for ``processes``)."""
        if self.backend in ("threads", "processes"):
            return self.engine.occupancy(self.params["jobs"])
        workers = (
            self.machine.node.compute_cores
            if self.params.get("overlap", True)
            else self.machine.node.cores
        )
        return self.engine.occupancy(workers)

    def critpath(self):
        """Causal critical-path analysis of the traced run: a
        :class:`repro.obs.critpath.CritPathReport` with per-segment
        blame, slack, stragglers and worker imbalance.  Requires the
        run to have been traced (``trace=True``)."""
        if self.trace is None:
            raise ValueError(
                "run has no trace; pass trace=True to analyse its critical path"
            )
        from ..obs.critpath import critical_path

        return critical_path(self.trace, self.graph)

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (elapsed ratio)."""
        if self.elapsed <= 0:
            return float("inf")
        return other.elapsed / self.elapsed

    def to_dict(self) -> dict[str, Any]:
        """Flat record for tables / EXPERIMENTS.md."""
        return {
            "impl": self.impl,
            "machine": self.machine.name,
            "nodes": self.machine.nodes,
            "n": self.problem.shape[0],
            "iterations": self.problem.iterations,
            **self.params,
            "elapsed_s": self.elapsed,
            "gflops": self.gflops,
            "messages": self.messages,
            "message_mb": self.message_bytes / 1e6,
            "redundant_fraction": self.redundant_fraction,
        }

    def summary(self) -> str:
        p = ", ".join(f"{k}={v}" for k, v in self.params.items() if v is not None)
        if self.backend == "threads":
            return (
                f"{self.impl} on {self.params['jobs']} worker threads ({p}): "
                f"{self.elapsed * 1e3:.2f} ms wall, {self.gflops:.2f} GFLOP/s, "
                f"occupancy {self.occupancy():.2f}"
            )
        if self.backend == "processes":
            return (
                f"{self.impl} on {self.params['procs']} processes x "
                f"{self.params['jobs']} threads ({p}): "
                f"{self.elapsed * 1e3:.2f} ms wall, {self.gflops:.2f} GFLOP/s, "
                f"{self.messages} real msgs / {self.message_bytes / 1e6:.2f} MB, "
                f"occupancy {self.occupancy():.2f}"
            )
        return (
            f"{self.impl} on {self.machine.name} x{self.machine.nodes} "
            f"({p}): {self.elapsed * 1e3:.2f} ms, {self.gflops:.2f} GFLOP/s, "
            f"{self.messages} msgs / {self.message_bytes / 1e6:.2f} MB"
        )
