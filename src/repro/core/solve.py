"""Convergence-driven solves: iterate until the residual drops.

The paper runs fixed iteration counts (100) because it measures
throughput; an adopting user usually wants "iterate until converged".
This driver runs any implementation in chunks of ``check_every``
sweeps, monitors the stencil residual ``|x - S(x) - source|`` between
chunks, and aggregates both the numerics and the modelled performance
across chunks -- so you get time-to-solution in model seconds, not
just time-per-sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..machine.machine import MachineSpec
from ..stencil.problem import JacobiProblem
from ..stencil.reference import residual_norm
from .runner import run


@dataclass
class SolveResult:
    """Outcome of :func:`solve_to_tolerance`."""

    grid: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    model_elapsed: float = 0.0  # summed virtual seconds across chunks
    messages: int = 0
    message_bytes: int = 0

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def solve_to_tolerance(
    problem: JacobiProblem,
    machine: MachineSpec,
    impl: str = "ca-parsec",
    tol: float = 1e-6,
    check_every: int = 50,
    max_iterations: int = 10_000,
    **run_kwargs,
) -> SolveResult:
    """Iterate ``problem``'s sweep until the residual's infinity norm
    falls below ``tol`` (absolute), restarting the task graph every
    ``check_every`` sweeps from the previous chunk's grid.

    The chunked structure mirrors how fixed-point loops are actually
    deployed on task runtimes: convergence checks are global
    reductions, so they are amortised over many sweeps.  CA step sizes
    larger than ``check_every`` are capped to it.
    """
    if tol <= 0:
        raise ValueError("tolerance must be positive")
    if check_every < 1:
        raise ValueError("check_every must be >= 1")
    if "steps" in run_kwargs:
        run_kwargs["steps"] = min(run_kwargs["steps"], check_every)

    grid = problem.initial_grid()
    source = problem.source_grid()
    result = SolveResult(grid=grid, converged=False, iterations=0)
    res0 = residual_norm(grid, problem.weights, problem.bc, source)
    result.residual_norms.append(res0)
    if res0 <= tol:
        result.converged = True
        return result

    done = 0
    current = grid
    while done < max_iterations:
        chunk = min(check_every, max_iterations - done)
        chunk_values = current

        chunk_problem = replace(
            problem,
            iterations=chunk,
            init=lambda r, c, v=chunk_values: v[r, c],
        )
        res = run(chunk_problem, impl=impl, machine=machine, mode="execute",
                  **run_kwargs)
        current = res.grid
        done += chunk
        result.model_elapsed += res.elapsed
        result.messages += res.messages
        result.message_bytes += res.message_bytes
        rnorm = residual_norm(current, problem.weights, problem.bc, source)
        result.residual_norms.append(rnorm)
        if rnorm <= tol:
            result.converged = True
            break
    result.grid = current
    result.iterations = done
    return result
