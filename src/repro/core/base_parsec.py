"""base-PaRSEC: the full-communication tiled stencil (section IV-B1).

Data is 2D-block distributed over the node grid and tiled within each
node; every tile carries a 1-deep ghost ring and exchanges ghost
strips with all four neighbours *every* iteration.  Only node-boundary
tiles generate network messages; the runtime overlaps those with
interior-tile work (communication hiding, no avoidance).

Structurally this is the ``steps=1`` instance of the shared dataflow
in :mod:`repro.core.dataflow`.
"""

from __future__ import annotations

from ..machine.machine import MachineSpec
from ..stencil.cost import KernelCostModel
from ..stencil.problem import JacobiProblem
from .dataflow import BuildResult, build_stencil_graph
from .spec import StencilSpec


def build_base_graph(
    problem: JacobiProblem,
    machine: MachineSpec,
    tile: int,
    cost: KernelCostModel | None = None,
    with_kernels: bool = True,
    boundary_priority: bool = True,
    pgrid=None,
) -> BuildResult:
    """Build the base-PaRSEC task graph for ``problem`` on ``machine``
    with ``tile x tile`` tiles.  ``pgrid`` overrides the default
    most-square node arrangement (surface-to-volume ablations)."""
    spec = StencilSpec.create(problem, nodes=machine.nodes, tile=tile, steps=1,
                              pgrid=pgrid)
    return build_stencil_graph(
        spec,
        machine,
        cost=cost,
        name="base",
        with_kernels=with_kernels,
        boundary_priority=boundary_priority,
    )
