"""Boundary conditions for the global grid.

The paper solves Laplace's equation with Jacobi iterations, i.e. the
grid of unknowns is surrounded by a ring of fixed (Dirichlet) values.
A :class:`DirichletBC` supplies those values; it fills the cells of a
tile's extended array that fall *outside* the global grid (pads along
physical edges) once at initialisation -- Dirichlet data never
changes, so no refresh is ever needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .tile import TileSpec


@dataclass(frozen=True)
class DirichletBC:
    """Fixed boundary values.

    Parameters
    ----------
    value:
        Either a constant, or a vectorised callable ``f(rows, cols) ->
        values`` evaluated on *global* index arrays (which are outside
        ``[0, nrows) x [0, ncols)`` for boundary cells).
    """

    value: float | Callable[[np.ndarray, np.ndarray], np.ndarray] = 0.0

    def evaluate(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        if callable(self.value):
            out = np.asarray(self.value(rows, cols), dtype=np.float64)
            if out.shape != rows.shape:
                raise ValueError(
                    f"boundary function returned shape {out.shape}, "
                    f"expected {rows.shape}"
                )
            return out
        return np.full(rows.shape, float(self.value))

    def fill_exterior(
        self, ext: np.ndarray, tile: TileSpec, nrows: int, ncols: int
    ) -> None:
        """Write boundary values into every cell of ``ext`` whose global
        coordinate lies outside the grid.  Interior pad cells (ghosts
        of real neighbours) are left untouched."""
        gr, gc = tile.global_coords()
        outside = (gr < 0) | (gr >= nrows) | (gc < 0) | (gc >= ncols)
        if outside.any():
            ext[outside] = self.evaluate(gr[outside], gc[outside])

    def frame(self, nrows: int, ncols: int, depth: int = 1) -> np.ndarray:
        """A dense (nrows + 2*depth) x (ncols + 2*depth) array holding
        boundary values on the outer frame and zeros inside; used by
        the single-array reference implementation."""
        framed = np.zeros((nrows + 2 * depth, ncols + 2 * depth))
        gr, gc = np.meshgrid(
            np.arange(-depth, nrows + depth),
            np.arange(-depth, ncols + depth),
            indexing="ij",
        )
        outside = (gr < 0) | (gr >= nrows) | (gc < 0) | (gc >= ncols)
        framed[outside] = self.evaluate(gr[outside], gc[outside])
        return framed
