"""Sides, corners and halo-strip geometry.

Conventions used throughout the package:

* axis 0 is rows, axis 1 is columns;
* NORTH is decreasing row index, WEST is decreasing column index;
* a tile's *core* is the region of the global grid it owns; its
  *extended array* adds per-side pads (ghost layers).

A :class:`StripSpec` describes a rectangular halo piece in coordinates
relative to a tile's core: depth into the pad on one side, and an
extension range along the perpendicular axis (CA strips extend past
the core to cover redundantly-computed halo cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Side(IntEnum):
    """The four faces of a tile."""

    NORTH = 0
    SOUTH = 1
    WEST = 2
    EAST = 3

    @property
    def axis(self) -> int:
        """0 for north/south (rows), 1 for west/east (columns)."""
        return 0 if self in (Side.NORTH, Side.SOUTH) else 1

    @property
    def is_low(self) -> bool:
        """True when the side faces decreasing index (north, west)."""
        return self in (Side.NORTH, Side.WEST)

    @property
    def opposite(self) -> "Side":
        return _OPPOSITE[self]

    @property
    def offset(self) -> tuple[int, int]:
        """(di, dj) step toward the neighbour across this side."""
        return _OFFSET[self]


_OPPOSITE = {
    Side.NORTH: Side.SOUTH,
    Side.SOUTH: Side.NORTH,
    Side.WEST: Side.EAST,
    Side.EAST: Side.WEST,
}

_OFFSET = {
    Side.NORTH: (-1, 0),
    Side.SOUTH: (1, 0),
    Side.WEST: (0, -1),
    Side.EAST: (0, 1),
}

SIDES = (Side.NORTH, Side.SOUTH, Side.WEST, Side.EAST)


class Corner(IntEnum):
    """The four corners, named by their two adjacent sides."""

    NW = 0
    NE = 1
    SW = 2
    SE = 3

    @property
    def sides(self) -> tuple[Side, Side]:
        """(row side, column side) of this corner."""
        return _CORNER_SIDES[self]

    @property
    def offset(self) -> tuple[int, int]:
        (rs, cs) = self.sides
        return (rs.offset[0], cs.offset[1])

    @property
    def opposite(self) -> "Corner":
        """The diagonally mirrored corner (NW <-> SE, NE <-> SW)."""
        return _OPPOSITE_CORNER[self]


_CORNER_SIDES = {
    Corner.NW: (Side.NORTH, Side.WEST),
    Corner.NE: (Side.NORTH, Side.EAST),
    Corner.SW: (Side.SOUTH, Side.WEST),
    Corner.SE: (Side.SOUTH, Side.EAST),
}

_OPPOSITE_CORNER = {
    Corner.NW: Corner.SE,
    Corner.NE: Corner.SW,
    Corner.SW: Corner.NE,
    Corner.SE: Corner.NW,
}

CORNERS = (Corner.NW, Corner.NE, Corner.SW, Corner.SE)


def corner_of(row_side: Side, col_side: Side) -> Corner:
    """The corner adjacent to ``row_side`` (N/S) and ``col_side`` (W/E)."""
    if row_side.axis != 0 or col_side.axis != 1:
        raise ValueError("corner_of expects (north/south, west/east)")
    return {
        (Side.NORTH, Side.WEST): Corner.NW,
        (Side.NORTH, Side.EAST): Corner.NE,
        (Side.SOUTH, Side.WEST): Corner.SW,
        (Side.SOUTH, Side.EAST): Corner.SE,
    }[(row_side, col_side)]


@dataclass(frozen=True)
class StripSpec:
    """One halo strip on ``side``, ``depth`` layers deep, spanning the
    perpendicular axis from ``-ext_lo`` before the core to
    ``core + ext_hi`` after it (both in grid cells).

    The same spec describes the *pad region* in the consumer's extended
    array and the *source region* inside the producer's extended array
    (mirrored across the shared face), which is what keeps producers
    and consumers bit-consistent.
    """

    side: Side
    depth: int
    ext_lo: int = 0
    ext_hi: int = 0

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("strip depth must be >= 1")
        if self.ext_lo < 0 or self.ext_hi < 0:
            raise ValueError("strip extensions cannot be negative")

    def nbytes(self, core_h: int, core_w: int, itemsize: int = 8) -> int:
        """Payload size given the *consumer-side* core shape."""
        span = (core_h if self.side.axis == 1 else core_w) + self.ext_lo + self.ext_hi
        return self.depth * span * itemsize

    def pad_region(self, core_h: int, core_w: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """The target region in consumer-relative coordinates: ((r0, r1),
        (c0, c1)), where core cells are rows [0, h) x cols [0, w) and
        pads are negative / beyond."""
        if self.side.axis == 0:
            rows = (-self.depth, 0) if self.side.is_low else (core_h, core_h + self.depth)
            cols = (-self.ext_lo, core_w + self.ext_hi)
        else:
            cols = (-self.depth, 0) if self.side.is_low else (core_w, core_w + self.depth)
            rows = (-self.ext_lo, core_h + self.ext_hi)
        return rows, cols

    def source_region(self, prod_h: int, prod_w: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """The matching source region in *producer*-relative coordinates
        (the producer sits across ``side``; facing tiles share the
        perpendicular index range, so extensions carry over as-is)."""
        if self.side.axis == 0:
            # Consumer's north pad = producer's southmost `depth` rows.
            rows = (prod_h - self.depth, prod_h) if self.side.is_low else (0, self.depth)
            cols = (-self.ext_lo, prod_w + self.ext_hi)
        else:
            cols = (prod_w - self.depth, prod_w) if self.side.is_low else (0, self.depth)
            rows = (-self.ext_lo, prod_h + self.ext_hi)
        return rows, cols


@dataclass(frozen=True)
class CornerSpec:
    """A corner block: ``depth_r`` rows x ``depth_c`` cols diagonally
    adjacent to the core at ``corner``."""

    corner: Corner
    depth_r: int
    depth_c: int

    def __post_init__(self) -> None:
        if self.depth_r < 1 or self.depth_c < 1:
            raise ValueError("corner depths must be >= 1")

    def nbytes(self, itemsize: int = 8) -> int:
        return self.depth_r * self.depth_c * itemsize

    def pad_region(self, core_h: int, core_w: int) -> tuple[tuple[int, int], tuple[int, int]]:
        rs, cs = self.corner.sides
        rows = (-self.depth_r, 0) if rs.is_low else (core_h, core_h + self.depth_r)
        cols = (-self.depth_c, 0) if cs.is_low else (core_w, core_w + self.depth_c)
        return rows, cols

    def source_region(self, prod_h: int, prod_w: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """Matching region inside the diagonal producer's core: the
        block hugging the opposite corner."""
        rs, cs = self.corner.sides
        rows = (prod_h - self.depth_r, prod_h) if rs.is_low else (0, self.depth_r)
        cols = (prod_w - self.depth_c, prod_w) if cs.is_low else (0, self.depth_c)
        return rows, cols
