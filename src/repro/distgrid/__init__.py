"""Distributed 2D grid substrate: process grids, block partitions,
tiles with ghost pads, halo-strip geometry and boundary conditions."""

from .boundary import DirichletBC
from .halo import CORNERS, SIDES, Corner, CornerSpec, Side, StripSpec, corner_of
from .partition import GridPartition, ProcessGrid, even_split, tile_split
from .tile import Region, TileSpec

__all__ = [
    "CORNERS",
    "Corner",
    "CornerSpec",
    "DirichletBC",
    "GridPartition",
    "ProcessGrid",
    "Region",
    "SIDES",
    "Side",
    "StripSpec",
    "TileSpec",
    "corner_of",
    "even_split",
    "tile_split",
]
