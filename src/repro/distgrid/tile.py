"""Tiles and their extended (ghost-padded) arrays.

A :class:`TileSpec` is the static description of one tile: its core
region of the global grid, its per-side pad depths (1 for locally
refreshed ghosts, ``s`` for communication-avoiding remote ghosts) and
which sides face remote neighbours.  The module also provides the
index arithmetic between *tile-relative* coordinates (core cell (0,0)
at the tile's north-west corner, pads at negative / beyond-core
indices) and positions in the extended numpy array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .halo import SIDES, Side

Region = tuple[tuple[int, int], tuple[int, int]]


@dataclass(frozen=True)
class TileSpec:
    """Static geometry of one tile.

    ``pads``, ``remote`` and ``has_neighbor`` are 4-tuples indexed by
    :class:`~repro.distgrid.halo.Side` (N, S, W, E).
    """

    i: int
    j: int
    r0: int
    r1: int
    c0: int
    c1: int
    node: int
    pads: tuple[int, int, int, int]
    remote: tuple[bool, bool, bool, bool]
    has_neighbor: tuple[bool, bool, bool, bool]

    def __post_init__(self) -> None:
        if self.r1 <= self.r0 or self.c1 <= self.c0:
            raise ValueError("tile core must be non-empty")
        if any(p < 0 for p in self.pads):
            raise ValueError("pads cannot be negative")
        for s in SIDES:
            if self.remote[s] and not self.has_neighbor[s]:
                raise ValueError(f"side {s.name} marked remote but has no neighbour")

    @property
    def h(self) -> int:
        return self.r1 - self.r0

    @property
    def w(self) -> int:
        return self.c1 - self.c0

    @property
    def key(self) -> tuple[int, int]:
        return (self.i, self.j)

    def pad(self, side: Side) -> int:
        return self.pads[side]

    def ext_shape(self) -> tuple[int, int]:
        pn, ps, pw, pe = self.pads
        return (self.h + pn + ps, self.w + pw + pe)

    def is_boundary(self) -> bool:
        """Boundary tile in the paper's sense (>= 1 remote side)."""
        return any(self.remote)

    # -- coordinate arithmetic ------------------------------------------

    def ext_slices(self, region: Region) -> tuple[slice, slice]:
        """Convert a tile-relative region ((r0, r1), (c0, c1)) -- where
        core rows are [0, h) and pads are negative / beyond -- into
        slices of the extended array, validating bounds."""
        (ra, rb), (ca, cb) = region
        pn, ps, pw, pe = self.pads
        if not (-pn <= ra <= rb <= self.h + ps):
            raise IndexError(f"row range ({ra}, {rb}) outside tile {self.key} pads")
        if not (-pw <= ca <= cb <= self.w + pe):
            raise IndexError(f"col range ({ca}, {cb}) outside tile {self.key} pads")
        return slice(pn + ra, pn + rb), slice(pw + ca, pw + cb)

    def core_slices(self) -> tuple[slice, slice]:
        return self.ext_slices(((0, self.h), (0, self.w)))

    # -- extended-array operations ----------------------------------------

    def alloc_ext(self, dtype=np.float64, fill: float = 0.0) -> np.ndarray:
        return np.full(self.ext_shape(), fill, dtype=dtype)

    def load_core(self, ext: np.ndarray, values: np.ndarray) -> None:
        """Copy ``values`` (h x w) into the core of ``ext``."""
        if values.shape != (self.h, self.w):
            raise ValueError(
                f"core values shape {values.shape} != tile {(self.h, self.w)}"
            )
        rs, cs = self.core_slices()
        ext[rs, cs] = values

    def core(self, ext: np.ndarray) -> np.ndarray:
        """Copy of the core region of ``ext``."""
        rs, cs = self.core_slices()
        return ext[rs, cs].copy()

    def extract(self, ext: np.ndarray, region: Region) -> np.ndarray:
        """Copy a tile-relative region out of ``ext``."""
        rs, cs = self.ext_slices(region)
        return ext[rs, cs].copy()

    def paste(self, ext: np.ndarray, region: Region, values: np.ndarray) -> None:
        """Write ``values`` into a tile-relative region of ``ext``."""
        rs, cs = self.ext_slices(region)
        expected = (rs.stop - rs.start, cs.stop - cs.start)
        if values.shape != expected:
            raise ValueError(
                f"paste shape {values.shape} != region shape {expected} "
                f"(tile {self.key}, region {region})"
            )
        ext[rs, cs] = values

    def global_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Global (row, col) index grids for every cell of the extended
        array, used to evaluate boundary conditions."""
        pn, _ps, pw, _pe = self.pads
        eh, ew = self.ext_shape()
        rows = np.arange(self.r0 - pn, self.r0 - pn + eh)
        cols = np.arange(self.c0 - pw, self.c0 - pw + ew)
        return np.meshgrid(rows, cols, indexing="ij")
