"""Two-level domain decomposition: node blocks, then tiles.

The paper arranges nodes "into square compute grid and the data tiles
were allocated in a 2D block fashion to exploit the surface-to-volume
ratio effect": the global grid is first split into P x Q node blocks
(as square as possible), and each node's block is further divided into
tiles that individual tasks operate on.  Tiles therefore never span
two nodes, and facing tiles always share their perpendicular index
range -- the property the halo strips rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from .halo import Corner, Side


@dataclass(frozen=True)
class ProcessGrid:
    """A P x Q arrangement of node ranks, row-major."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("process grid dimensions must be >= 1")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def rank(self, pr: int, pc: int) -> int:
        if not (0 <= pr < self.rows and 0 <= pc < self.cols):
            raise IndexError(f"process coords ({pr}, {pc}) outside {self}")
        return pr * self.cols + pc

    def coords(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} outside {self}")
        return divmod(rank, self.cols)

    @classmethod
    def square(cls, nodes: int) -> "ProcessGrid":
        """Most-square factorisation of ``nodes`` (paper runs used
        perfect squares: 4, 16, 64)."""
        if nodes < 1:
            raise ValueError("need at least one node")
        p = int(math.isqrt(nodes))
        while nodes % p != 0:
            p -= 1
        return cls(rows=p, cols=nodes // p)


@dataclass(frozen=True)
class RemappedGrid(ProcessGrid):
    """A process grid whose ranks were renumbered after node loss.

    Recovery keeps the *geometry* (``rows x cols`` blocks, hence the
    exact tile layout of the original partition) and changes only the
    ownership: each original block maps through ``mapping`` to a
    surviving node id, a dead block being adopted by the nearest
    survivor in its *own column* (the buddy scheme).  Preserving the
    tile layout is what lets a restart reuse checkpointed tiles
    one-to-one instead of resharding the grid -- and keeps the
    restarted graph the same size as the original rather than
    re-tiling around an awkward survivor count.

    Adoption is column-local on purpose.  The CA dataflow assumes
    ownership invariants that hold for any injective rank map -- a
    tile with two local sides needs no corner block, and a local
    strip's perpendicular extension exists because the producer's
    matching side is also remote.  Column-local groups keep every
    east/west block boundary remote and give each tile at most one
    local axis, so both invariants survive.  L-shaped adoption groups
    (e.g. three blocks of a 2x2 grid on one node) break them and
    silently corrupt corner cells -- which is why :meth:`shrink`
    refuses (returns ``None``) when a column has no survivor left,
    and recovery falls back to re-tiling instead.
    """

    mapping: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.mapping) != self.rows * self.cols:
            raise ValueError(
                f"mapping covers {len(self.mapping)} blocks; the grid "
                f"has {self.rows * self.cols}"
            )

    @property
    def size(self) -> int:
        """Surviving node count (distinct target ids)."""
        return len(set(self.mapping))

    def rank(self, pr: int, pc: int) -> int:
        return self.mapping[super().rank(pr, pc)]

    @classmethod
    def shrink(cls, base: ProcessGrid, alive: list[int]) -> "RemappedGrid | None":
        """Renumber ``base`` onto the surviving original ranks ``alive``
        (sorted); every dead rank's block is adopted by the nearest
        survivor in the same column (ties go downward).  Returns
        ``None`` when some column has no survivor -- geometry cannot
        be preserved safely then (see the class docstring)."""
        total = base.rows * base.cols
        new_id = {r: i for i, r in enumerate(alive)}
        if not new_id or any(not 0 <= r < total for r in new_id):
            raise ValueError(f"alive ranks {alive!r} outside {base}")
        mapping = []
        for r in range(total):
            if r in new_id:
                mapping.append(new_id[r])
                continue
            pr, pc = divmod(r, base.cols)
            buddy = None
            for k in range(1, base.rows):
                for cand_row in ((pr + k) % base.rows, (pr - k) % base.rows):
                    cand = cand_row * base.cols + pc
                    if cand in new_id:
                        buddy = cand
                        break
                if buddy is not None:
                    break
            if buddy is None:
                return None
            mapping.append(new_id[buddy])
        return cls(rows=base.rows, cols=base.cols, mapping=tuple(mapping))


def even_split(total: int, parts: int) -> list[int]:
    """Split ``total`` cells into ``parts`` contiguous chunks whose
    sizes differ by at most one (the first ``total % parts`` chunks get
    the extra cell), like PETSc's ``PetscSplitOwnership``."""
    if parts < 1:
        raise ValueError("need at least one part")
    if total < parts:
        raise ValueError(f"cannot give {parts} parts of a {total}-cell extent")
    base, extra = divmod(total, parts)
    return [base + (1 if p < extra else 0) for p in range(parts)]


def tile_split(extent: int, tile: int) -> list[int]:
    """Split one node-block extent into tiles of ``tile`` cells, last
    tile possibly smaller."""
    if tile < 1:
        raise ValueError("tile size must be >= 1")
    sizes = [tile] * (extent // tile)
    if extent % tile:
        sizes.append(extent % tile)
    return sizes


@dataclass(frozen=True)
class GridPartition:
    """Partition of an ``nrows x ncols`` grid over ``pgrid`` nodes with
    tiles of at most ``tile x tile`` cells.

    Tile coordinates are global: tile (i, j) covers rows
    ``row_starts[i]:row_starts[i+1]`` and the analogous columns, and is
    owned by ``owner(i, j)``.
    """

    nrows: int
    ncols: int
    pgrid: ProcessGrid
    tile: int

    def __post_init__(self) -> None:
        if self.nrows < self.pgrid.rows or self.ncols < self.pgrid.cols:
            raise ValueError("grid smaller than the process grid")
        if self.tile < 1:
            raise ValueError("tile size must be >= 1")

    # -- per-axis decompositions (cached, shared by rows/cols) ---------

    @cached_property
    def _row_layout(self) -> tuple[list[int], list[int]]:
        return self._axis_layout(self.nrows, self.pgrid.rows)

    @cached_property
    def _col_layout(self) -> tuple[list[int], list[int]]:
        return self._axis_layout(self.ncols, self.pgrid.cols)

    def _axis_layout(self, extent: int, nblocks: int) -> tuple[list[int], list[int]]:
        """Returns (tile boundary offsets, owning block per tile)."""
        starts = [0]
        owners: list[int] = []
        for block, size in enumerate(even_split(extent, nblocks)):
            for t in tile_split(size, self.tile):
                starts.append(starts[-1] + t)
                owners.append(block)
        return starts, owners

    # -- shapes ----------------------------------------------------------

    @property
    def tile_shape(self) -> tuple[int, int]:
        """(tile rows, tile cols) in the global tile index space."""
        return len(self._row_layout[1]), len(self._col_layout[1])

    def tiles(self):
        """Iterate all global tile coordinates, row-major."""
        tr, tc = self.tile_shape
        for i in range(tr):
            for j in range(tc):
                yield (i, j)

    # -- geometry ----------------------------------------------------------

    def tile_rows(self, i: int) -> tuple[int, int]:
        starts = self._row_layout[0]
        if not 0 <= i < len(starts) - 1:
            raise IndexError(f"tile row {i} out of range")
        return starts[i], starts[i + 1]

    def tile_cols(self, j: int) -> tuple[int, int]:
        starts = self._col_layout[0]
        if not 0 <= j < len(starts) - 1:
            raise IndexError(f"tile col {j} out of range")
        return starts[j], starts[j + 1]

    def tile_size(self, i: int, j: int) -> tuple[int, int]:
        r0, r1 = self.tile_rows(i)
        c0, c1 = self.tile_cols(j)
        return r1 - r0, c1 - c0

    def min_tile_dim(self) -> int:
        """Smallest tile edge anywhere -- the upper bound on the CA step
        size."""
        row_sizes = [b - a for a, b in zip(self._row_layout[0], self._row_layout[0][1:])]
        col_sizes = [b - a for a, b in zip(self._col_layout[0], self._col_layout[0][1:])]
        return min(min(row_sizes), min(col_sizes))

    # -- ownership -----------------------------------------------------------

    def owner(self, i: int, j: int) -> int:
        """Node rank owning tile (i, j)."""
        return self.pgrid.rank(self._row_layout[1][i], self._col_layout[1][j])

    def neighbor(self, i: int, j: int, side: Side) -> tuple[int, int] | None:
        """Global coords of the tile across ``side``, or None at the
        physical boundary."""
        di, dj = side.offset
        ni, nj = i + di, j + dj
        tr, tc = self.tile_shape
        if 0 <= ni < tr and 0 <= nj < tc:
            return (ni, nj)
        return None

    def diagonal(self, i: int, j: int, corner: Corner) -> tuple[int, int] | None:
        di, dj = corner.offset
        ni, nj = i + di, j + dj
        tr, tc = self.tile_shape
        if 0 <= ni < tr and 0 <= nj < tc:
            return (ni, nj)
        return None

    def is_remote(self, i: int, j: int, side: Side) -> bool:
        """True when the neighbour across ``side`` lives on another node."""
        nb = self.neighbor(i, j, side)
        return nb is not None and self.owner(*nb) != self.owner(i, j)

    def is_node_boundary(self, i: int, j: int) -> bool:
        """A *boundary tile* in the paper's sense: at least one remote
        neighbour."""
        return any(self.is_remote(i, j, s) for s in Side)

    def tiles_of_node(self, rank: int) -> list[tuple[int, int]]:
        return [(i, j) for (i, j) in self.tiles() if self.owner(i, j) == rank]

    def counts(self) -> dict[str, int]:
        """Partition statistics used by reports and tests."""
        total = 0
        boundary = 0
        for (i, j) in self.tiles():
            total += 1
            if self.is_node_boundary(i, j):
                boundary += 1
        return {"tiles": total, "boundary_tiles": boundary, "interior_tiles": total - boundary}
