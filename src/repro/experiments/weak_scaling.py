"""Weak scaling (extension -- not a paper figure).

The paper evaluates strong scaling only; a natural companion question
is weak scaling: fix the per-node workload and grow the machine.  The
surface-to-volume ratio per node is then constant, so an ideal run
holds per-iteration time flat, and any droop isolates communication
effects (more neighbours exchanging simultaneously, never more work
per node).  Useful for sanity-checking the machine model and as a
harness users with different workloads will reach for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.runner import run
from ..stencil.problem import JacobiProblem
from .common import MachineSetup, NACL, iterations

HEADERS = ("Nodes", "Grid", "base GFLOP/s", "CA GFLOP/s", "base eff.", "CA eff.")


@dataclass(frozen=True)
class WeakPoint:
    nodes: int
    n: int
    base_gflops: float
    ca_gflops: float
    base_efficiency: float  # vs perfectly scaled 1-node throughput
    ca_efficiency: float


def sweep(
    setup: MachineSetup = NACL,
    per_node_tiles: int = 5,
    node_counts=(1, 4, 16, 64),
    ratio: float = 1.0,
) -> list[WeakPoint]:
    """Per node: a (per_node_tiles x tile)^2 block, so the global grid
    grows with sqrt(nodes)."""
    tile = setup.tile
    its = iterations()
    base1 = ca1 = None
    points = []
    for nodes in node_counts:
        side = int(math.isqrt(nodes))
        if side * side != nodes:
            raise ValueError("weak scaling sweep wants square node counts")
        n = side * per_node_tiles * tile
        problem = JacobiProblem(n=n, iterations=its)
        machine = setup.machine(nodes)
        base = run(problem, impl="base-parsec", machine=machine, tile=tile,
                   ratio=ratio, mode="simulate")
        ca = run(problem, impl="ca-parsec", machine=machine, tile=tile,
                 steps=setup.steps, ratio=ratio, mode="simulate")
        if base1 is None:
            base1, ca1 = base.gflops, ca.gflops
        points.append(WeakPoint(
            nodes=nodes,
            n=n,
            base_gflops=base.gflops,
            ca_gflops=ca.gflops,
            base_efficiency=base.gflops / (nodes * base1),
            ca_efficiency=ca.gflops / (nodes * ca1),
        ))
    return points


def rows(points: list[WeakPoint]) -> list[tuple]:
    return [
        (p.nodes, f"{p.n}^2", p.base_gflops, p.ca_gflops,
         f"{p.base_efficiency:.0%}", f"{p.ca_efficiency:.0%}")
        for p in points
    ]
