"""Fig. 7: strong-scaling speedup of PETSc vs base vs CA PaRSEC.

Speedup is measured against the optimal single-node base-PaRSEC run
(the paper's baseline).  The paper's findings, which the model
reproduces in shape: all three scale; the two PaRSEC versions sit ~2x
above PETSc (the SpMV index-traffic tax); base and CA are nearly
indistinguishable because the full-speed kernel keeps every run
memory-bound, not network-bound.

NaCL: 23040^2 grid, tile 288; Stampede2: 55296^2, tile 864; CA step
size 15; paper runs 100 iterations (REPRO_FULL=1), scaled runs fewer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runner import run
from .common import MachineSetup, NODE_COUNTS

HEADERS = ("Nodes", "PETSc", "base-PaRSEC", "CA-PaRSEC")

#: The paper's qualitative targets checked by the bench: PaRSEC ~2x
#: PETSc throughout, base ~= CA (within a few percent).
PAPER_PARSEC_OVER_PETSC = 2.0


@dataclass(frozen=True)
class ScalingPoint:
    nodes: int
    impl: str
    gflops: float
    elapsed: float
    speedup: float  # over the 1-node base-PaRSEC baseline


def baseline_gflops(setup: MachineSetup) -> float:
    """Optimal single-node base-PaRSEC performance (Fig. 6's pick)."""
    res = run(
        setup.problem(),
        impl="base-parsec",
        machine=setup.machine(1),
        tile=setup.tile,
        mode="simulate",
    )
    return res.gflops


def sweep(setup: MachineSetup, node_counts=NODE_COUNTS) -> list[ScalingPoint]:
    base = baseline_gflops(setup)
    points = []
    for nodes in node_counts:
        machine = setup.machine(nodes)
        for impl, kwargs in (
            ("petsc", {}),
            ("base-parsec", {"tile": setup.tile}),
            ("ca-parsec", {"tile": setup.tile, "steps": setup.steps}),
        ):
            res = run(setup.problem(), impl=impl, machine=machine, mode="simulate", **kwargs)
            points.append(
                ScalingPoint(
                    nodes=nodes,
                    impl=impl,
                    gflops=res.gflops,
                    elapsed=res.elapsed,
                    speedup=res.gflops / base,
                )
            )
    return points


def rows(setup: MachineSetup, node_counts=NODE_COUNTS) -> list[tuple]:
    points = sweep(setup, node_counts)
    out = []
    for nodes in node_counts:
        by_impl = {p.impl: p.speedup for p in points if p.nodes == nodes}
        out.append((nodes, by_impl["petsc"], by_impl["base-parsec"], by_impl["ca-parsec"]))
    return out


def parsec_over_petsc(points: list[ScalingPoint]) -> list[float]:
    """base-PaRSEC / PETSc throughput ratio per node count."""
    ratios = []
    for nodes in sorted({p.nodes for p in points}):
        by_impl = {p.impl: p.gflops for p in points if p.nodes == nodes}
        ratios.append(by_impl["base-parsec"] / by_impl["petsc"])
    return ratios
