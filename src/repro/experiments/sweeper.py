"""Generic parameter sweeps over the unified runner.

The figure modules hard-code the paper's sweeps; users exploring their
own workloads want the general tool: give :class:`Sweep` the axes to
cross (machine presets, node counts, implementations, tiles, steps,
ratios...), get one flat record per configuration, ready for
`repro.analysis.tables` or CSV export.

Example
-------
>>> from repro.experiments.sweeper import Sweep
>>> from repro.stencil.problem import JacobiProblem
>>> sweep = Sweep(problem=JacobiProblem(n=1152, iterations=6))
>>> records = sweep.run(impl=["base-parsec", "ca-parsec"],
...                     nodes=[4, 16], ratio=[1.0, 0.2], tile=[288])
>>> len(records)
8
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..analysis import csvio
from ..core.runner import run
from ..machine.machine import MachineSpec, preset
from ..stencil.problem import JacobiProblem

#: Axes forwarded to :func:`repro.core.runner.run` verbatim.
RUN_AXES = ("impl", "tile", "steps", "ratio", "policy", "overlap",
            "boundary_priority", "passes")


@dataclass
class Sweep:
    """A cartesian sweep over runner parameters for one problem.

    ``machine_factory`` maps (machine_name, nodes) to a
    :class:`MachineSpec`; the default uses the presets.  ``on_result``
    is called after each configuration (progress reporting).
    """

    problem: JacobiProblem
    machine_factory: Callable[[str, int], MachineSpec] = field(
        default=lambda name, nodes: preset(name, nodes=nodes)
    )
    on_result: Callable[[dict], None] | None = None

    def run_configs(
        self,
        configs: Sequence[dict],
        machine: MachineSpec,
        mode: str = "simulate",
        **common: Any,
    ) -> list[dict]:
        """Evaluate explicit configuration dicts, no cartesian expansion.

        This is the single evaluation path shared by :meth:`run` and
        the autotuner (:mod:`repro.tuning.search`): each config dict is
        forwarded to :func:`repro.core.runner.run` on top of
        ``common`` kwargs (backend, jobs, ...), and the records come
        back in input order.
        """
        records = []
        for config in configs:
            result = run(self.problem, machine=machine, mode=mode,
                         **common, **config)
            record = result.to_dict()
            records.append(record)
            if self.on_result is not None:
                self.on_result(record)
        return records

    def run(
        self,
        machine: Sequence[str] = ("nacl",),
        nodes: Sequence[int] = (4,),
        mode: str = "simulate",
        seed: int | None = None,
        **axes: Sequence[Any],
    ) -> list[dict]:
        """Cross every axis and run each configuration once.

        ``axes`` values must be sequences; keys must be runner
        parameters (see :data:`RUN_AXES`).  Returns
        ``RunResult.to_dict()`` records, one per configuration, in
        deterministic (itertools.product) order; a ``seed`` shuffles
        the evaluation (and record) order reproducibly -- the same
        seed always yields the same order, which is how time-boxed
        studies sample the space fairly without losing replayability.
        """
        unknown = set(axes) - set(RUN_AXES)
        if unknown:
            raise ValueError(
                f"unknown sweep axes {sorted(unknown)}; valid: {RUN_AXES}"
            )
        for key, values in axes.items():
            if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
                raise TypeError(f"axis {key!r} must be a sequence, got {values!r}")
        names = list(axes)
        configs = [
            (machine_name, node_count, dict(zip(names, combo)))
            for machine_name, node_count in itertools.product(machine, nodes)
            for combo in itertools.product(*(axes[name] for name in names))
        ]
        if seed is not None:
            random.Random(seed).shuffle(configs)
        specs: dict[tuple[str, int], MachineSpec] = {}
        records = []
        for machine_name, node_count, kwargs in configs:
            key = (machine_name, node_count)
            if key not in specs:
                specs[key] = self.machine_factory(machine_name, node_count)
            record = self.run_configs([kwargs], machine=specs[key], mode=mode)[0]
            record["machine_preset"] = machine_name
            records.append(record)
        return records


def to_csv(
    records: Sequence[dict],
    path: str | None = None,
    fields: Sequence[str] | None = None,
) -> str:
    """One export path for sweep *and* tuning records: render the flat
    dicts as CSV text (via :mod:`repro.analysis.csvio`) and optionally
    write them to ``path``.  Returns the CSV text either way."""
    text = csvio.dumps(records, fields)
    if path is not None:
        with open(path, "w", newline="") as fh:
            fh.write(text)
    return text


def best(records: Sequence[dict], metric: str = "gflops") -> dict:
    """The record maximising ``metric``."""
    if not records:
        raise ValueError("no records to choose from")
    return max(records, key=lambda r: r[metric])


def pivot(
    records: Sequence[dict], row_key: str, col_key: str, value: str = "gflops"
) -> tuple[list, list, list[list]]:
    """Reshape records into a (row labels, column labels, matrix)
    triple for table rendering; missing cells become None."""
    rows = sorted({r[row_key] for r in records}, key=lambda v: (str(type(v)), v))
    cols = sorted({r[col_key] for r in records}, key=lambda v: (str(type(v)), v))
    matrix = [[None] * len(cols) for _ in rows]
    for rec in records:
        i = rows.index(rec[row_key])
        j = cols.index(rec[col_key])
        matrix[i][j] = rec[value]
    return rows, cols, matrix
