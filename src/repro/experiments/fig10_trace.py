"""Fig. 10: per-node execution traces of base vs CA PaRSEC.

The paper profiles one node of the 16-node NaCL run at kernel ratio
0.4 and shows (a) the CA trace keeps workers busier while messages
are in flight (higher occupancy), (b) the CA kernels are individually
*slower* (median 153 ms vs 136 ms in their measurement -- the extra
ghost copies), yet (c) the CA run finishes ~14 % sooner.  This
experiment captures both traces, renders them as ASCII Gantt charts
and reports the same three findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.gantt import render_gantt
from ..analysis.occupancy import compare_occupancy, occupancy_report
from ..core.report import RunResult
from ..core.runner import run
from .common import MachineSetup, NACL

#: The paper profiles 16 NaCL nodes at ratio 0.4.  Our simulator's
#: overlap is perfect until the comm thread saturates, which happens
#: slightly later than on the real machine (see EXPERIMENTS.md), so
#: the profiled run uses ratio 0.2 -- the same comm-bound regime the
#: paper's trace illustrates.
NODES = 16
RATIO = 0.2
PROFILE_NODE = 0


@dataclass(frozen=True)
class TraceExperiment:
    base: RunResult
    ca: RunResult

    def comparison(self) -> dict[str, float]:
        machine = self.base.machine
        return compare_occupancy(
            self.base.trace, self.ca.trace, PROFILE_NODE, machine.node.compute_cores
        )

    def gantt(self, which: str = "base", width: int = 100,
              critpath: bool = False) -> str:
        res = self.base if which == "base" else self.ca
        overlay = res.critpath() if critpath else None
        return render_gantt(res.trace, PROFILE_NODE, width=width,
                            critpath=overlay)


def capture(setup: MachineSetup = NACL, ratio: float = RATIO, nodes: int = NODES) -> TraceExperiment:
    problem = setup.problem()
    machine = setup.machine(nodes)
    base = run(
        problem, impl="base-parsec", machine=machine,
        tile=setup.tile, ratio=ratio, mode="simulate", trace=True,
    )
    ca = run(
        problem, impl="ca-parsec", machine=machine,
        tile=setup.tile, steps=setup.steps, ratio=ratio, mode="simulate", trace=True,
    )
    return TraceExperiment(base=base, ca=ca)


def causal_summary(exp: TraceExperiment) -> str:
    """Fig. 10's causal reading: diff the base and CA traces and show
    how the blame of the critical path moved.  The paper's claim --
    CA trades slower kernels for less exposed communication -- appears
    here as a lower communication share of critical-path time."""
    from ..obs.diff import diff_results

    diff = diff_results(exp.base, exp.ca,
                        label_a="base-parsec", label_b="ca-parsec")
    return diff.format()


def rows(exp: TraceExperiment) -> list[tuple]:
    workers = exp.base.machine.node.compute_cores
    b = occupancy_report(exp.base.trace, PROFILE_NODE, workers)
    c = occupancy_report(exp.ca.trace, PROFILE_NODE, workers)
    return [
        ("occupancy", b.occupancy, c.occupancy),
        ("median task (ms)", b.median_task_s * 1e3, c.median_task_s * 1e3),
        ("mean boundary task (ms)", b.mean_boundary_s * 1e3, c.mean_boundary_s * 1e3),
        ("makespan (ms)", b.makespan_s * 1e3, c.makespan_s * 1e3),
    ]


HEADERS = ("Metric", "base-PaRSEC", "CA-PaRSEC")
