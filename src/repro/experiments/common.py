"""Shared experiment plumbing: paper configurations and CI scaling.

Every experiment module regenerates one table or figure.  By default
runs are *scaled down in iterations only* (the spatial configuration
-- grid, tiles, node counts -- stays exactly the paper's, so
surface-to-volume and comm/compute ratios are preserved); setting
``REPRO_FULL=1`` restores the paper's 100 iterations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..machine.machine import MachineSpec, nacl, stampede2
from ..stencil.problem import JacobiProblem


def full_mode() -> bool:
    """True when REPRO_FULL=1: run the paper-sized iteration counts."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def iterations(default_scaled: int = 8, full: int = 100) -> int:
    return full if full_mode() else default_scaled


@dataclass(frozen=True)
class MachineSetup:
    """One of the two evaluation platforms with its paper parameters."""

    name: str
    problem_n: int  # strong-scaling grid (Figs 7-10)
    tile: int
    tuning_problem_n: int  # single-node tile-tuning grid (Fig 6)
    steps: int  # CA step size for Figs 7-8

    def machine(self, nodes: int) -> MachineSpec:
        return nacl(nodes) if self.name == "NaCL" else stampede2(nodes)

    def problem(self, its: int | None = None) -> JacobiProblem:
        return JacobiProblem(n=self.problem_n, iterations=its or iterations())

    def tuning_problem(self, its: int | None = None) -> JacobiProblem:
        """Single-node grid for Fig. 6.  The scaled variant halves the
        grid (same optimum: the plateau is a per-point property; only
        the starvation edge moves, and the sweep covers it)."""
        n = self.tuning_problem_n if full_mode() else self.tuning_problem_n // 2
        return JacobiProblem(n=n, iterations=its or iterations(4, 10))


#: The paper's two platforms and workload parameters (section VI).
NACL = MachineSetup(name="NaCL", problem_n=23040, tile=288, tuning_problem_n=20000, steps=15)
STAMPEDE2 = MachineSetup(
    name="Stampede2", problem_n=55296, tile=864, tuning_problem_n=27000, steps=15
)

SETUPS = (NACL, STAMPEDE2)

#: Node counts of the strong-scaling sweeps.
NODE_COUNTS = (4, 16, 64)

#: Kernel adjustment ratios of Figs 8-9.
RATIOS = (0.2, 0.4, 0.6, 0.8)

#: CA step sizes of Fig 9.
STEP_SIZES = (5, 15, 25, 40)


def setup_by_name(name: str) -> MachineSetup:
    for s in SETUPS:
        if s.name.lower() == name.lower():
            return s
    raise KeyError(f"unknown machine setup {name!r}")
