"""Table I: STREAM bandwidths (MB/s) for NaCL and Stampede2.

Regenerates the four rows of the paper's Table I from the machine
models (which are calibrated to it -- this experiment closes the
loop and asserts the calibration), and optionally appends a measured
row for the current host.
"""

from __future__ import annotations

from ..machine.machine import nacl, stampede2
from ..machine.stream import PAPER_TABLE1, model, run_host

HEADERS = ("System", "Scale", "COPY", "SCALE", "ADD", "TRIAD")


def rows(include_host: bool = False, host_elements: int = 2_000_000) -> list[tuple]:
    """The Table I rows (modelled), optionally plus this host."""
    out = []
    for machine, scale in (
        (nacl(), "1-core"),
        (nacl(), "1-node"),
        (stampede2(), "1-core"),
        (stampede2(), "1-node"),
    ):
        out.append(model(machine.node, scale, system=machine.name).as_row())
    if include_host:
        out.append(run_host(elements=host_elements, system="host").as_row())
    return out


def paper_rows() -> list[tuple]:
    """The values printed in the paper, for side-by-side comparison."""
    out = []
    for (system, scale), modes in PAPER_TABLE1.items():
        out.append((system, scale, modes["COPY"], modes["SCALE"], modes["ADD"], modes["TRIAD"]))
    return out


def max_relative_error() -> float:
    """Largest relative deviation between model and paper across every
    cell of Table I -- the calibration quality metric."""
    worst = 0.0
    for modelled, paper in zip(rows(), paper_rows()):
        for got, want in zip(modelled[2:], paper[2:]):
            worst = max(worst, abs(got - want) / want)
    return worst
