"""The paper's evaluation, one module per table/figure, plus the
registry that indexes them (see DESIGN.md section 4)."""

from .common import (
    NACL,
    NODE_COUNTS,
    RATIOS,
    SETUPS,
    STAMPEDE2,
    STEP_SIZES,
    MachineSetup,
    full_mode,
    iterations,
    setup_by_name,
)
from .registry import REGISTRY, ExperimentEntry, get
from . import projection, sweeper, weak_scaling

__all__ = [
    "MachineSetup",
    "NACL",
    "NODE_COUNTS",
    "RATIOS",
    "REGISTRY",
    "SETUPS",
    "STAMPEDE2",
    "STEP_SIZES",
    "ExperimentEntry",
    "full_mode",
    "get",
    "iterations",
    "projection",
    "setup_by_name",
    "sweeper",
    "weak_scaling",
]
