"""The paper's headline claims, recomputed from the model.

Abstract: "we can achieve 2X speedup over the standard SpMV solution
implemented in PETSc, and in certain cases when kernel execution is
not dominating the execution time, the CA-PaRSEC version achieved up
to 57% and 33% speedup over base-PaRSEC implementation on NaCL and
Stampede2 respectively."
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import NACL, STAMPEDE2
from .fig7_strong_scaling import parsec_over_petsc, sweep as fig7_sweep
from .fig8_kernel_ratio import best_gain, sweep as fig8_sweep

HEADERS = ("Claim", "Paper", "Measured")


@dataclass(frozen=True)
class Headlines:
    parsec_over_petsc_nacl: float
    parsec_over_petsc_s2: float
    ca_gain_nacl: float
    ca_gain_nacl_at: tuple[int, float]
    ca_gain_s2: float
    ca_gain_s2_at: tuple[int, float]


def compute() -> Headlines:
    """Recompute the three headlines at the configurations the paper
    quotes them for: the 2x figure from the 16-node strong-scaling
    point, the +57% NaCL gain at 16 nodes and the +33% Stampede2 gain
    at 64 nodes (both at the smallest kernel ratio)."""
    f7_nacl = fig7_sweep(NACL, node_counts=(16,))
    f7_s2 = fig7_sweep(STAMPEDE2, node_counts=(16,))
    f8_nacl = fig8_sweep(NACL, node_counts=(16,), ratios=(0.2, 0.4))
    f8_s2 = fig8_sweep(STAMPEDE2, node_counts=(64,), ratios=(0.2, 0.4))
    best_nacl = best_gain(f8_nacl)
    best_s2 = best_gain(f8_s2)
    return Headlines(
        parsec_over_petsc_nacl=parsec_over_petsc(f7_nacl)[0],
        parsec_over_petsc_s2=parsec_over_petsc(f7_s2)[0],
        ca_gain_nacl=best_nacl.gain,
        ca_gain_nacl_at=(best_nacl.nodes, best_nacl.ratio),
        ca_gain_s2=best_s2.gain,
        ca_gain_s2_at=(best_s2.nodes, best_s2.ratio),
    )


def rows(h: Headlines) -> list[tuple]:
    return [
        ("PaRSEC over PETSc (NaCL)", "2x", f"{h.parsec_over_petsc_nacl:.2f}x"),
        ("PaRSEC over PETSc (Stampede2)", "2x", f"{h.parsec_over_petsc_s2:.2f}x"),
        (
            f"max CA gain, NaCL (nodes={h.ca_gain_nacl_at[0]}, r={h.ca_gain_nacl_at[1]})",
            "+57%",
            f"{h.ca_gain_nacl:+.0%}",
        ),
        (
            f"max CA gain, Stampede2 (nodes={h.ca_gain_s2_at[0]}, r={h.ca_gain_s2_at[1]})",
            "+33%",
            f"{h.ca_gain_s2:+.0%}",
        ),
    ]
