"""Fig. 9: CA step-size tuning across kernel ratios.

The step size controls how often boundary tiles communicate, the
message sizes and the redundant-work volume; the paper's point is
that the optimum must be searched ("if communication avoiding scheme
can improve performance over the base version, the step size needs to
be tuned").  This experiment sweeps s in {5, 15, 25, 40} against the
kernel ratios, on each node count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runner import run
from .common import MachineSetup, NODE_COUNTS, RATIOS, STEP_SIZES, full_mode

HEADERS = ("Nodes", "Ratio", *(f"s={s}" for s in STEP_SIZES))


@dataclass(frozen=True)
class StepPoint:
    nodes: int
    ratio: float
    steps: int
    gflops: float


def sweep(
    setup: MachineSetup,
    node_counts=None,
    ratios=RATIOS,
    step_sizes=STEP_SIZES,
) -> list[StepPoint]:
    if node_counts is None:
        # The scaled run sweeps the 16-node panel (the paper's focus);
        # REPRO_FULL covers all three panels.
        node_counts = NODE_COUNTS if full_mode() else (16,)
    problem = setup.problem()
    points = []
    for nodes in node_counts:
        machine = setup.machine(nodes)
        for ratio in ratios:
            for s in step_sizes:
                res = run(
                    problem, impl="ca-parsec", machine=machine,
                    tile=setup.tile, steps=s, ratio=ratio, mode="simulate",
                )
                points.append(StepPoint(nodes=nodes, ratio=ratio, steps=s, gflops=res.gflops))
    return points


def rows(setup: MachineSetup, **kwargs) -> list[tuple]:
    points = sweep(setup, **kwargs)
    out = []
    for nodes in sorted({p.nodes for p in points}):
        for ratio in sorted({p.ratio for p in points}):
            row = [nodes, ratio]
            for s in STEP_SIZES:
                match = [p for p in points if p.nodes == nodes and p.ratio == ratio and p.steps == s]
                row.append(match[0].gflops if match else float("nan"))
            out.append(tuple(row))
    return out


def optimal_step(points: list[StepPoint], nodes: int, ratio: float) -> StepPoint:
    pool = [p for p in points if p.nodes == nodes and p.ratio == ratio]
    if not pool:
        raise KeyError(f"no points for nodes={nodes}, ratio={ratio}")
    return max(pool, key=lambda p: p.gflops)
