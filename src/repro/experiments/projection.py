"""Future-machine projections (section VII of the paper).

The conclusion argues that on upcoming machines -- "memory bandwidth
is expected to have around 50 % improvement, but the improvement of
network latency will remain modest" -- per-node workloads will drain
so fast that the stencil becomes *network*-bound even with untuned
kernels, and "the implementation variant based on
communication-avoiding approach shows a distinct advantage."

This experiment makes that argument quantitative: starting from the
Stampede2 model it scales node memory bandwidth by a sweep of factors
(network untouched), reruns base vs CA at full kernel speed (no
ratio trick needed -- the hardware itself shrinks the kernel time),
and reports where CA starts winning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.runner import run
from .common import MachineSetup, STAMPEDE2

HEADERS = ("BW factor", "base GFLOP/s", "CA GFLOP/s", "CA gain")

#: Memory-bandwidth multipliers: today, the conclusion's +50%, Summit's
#: GPU-class ~5x, and the deep-HBM regime where the per-node drain time
#: finally falls to the per-message cost scale.  (The paper's ratio-0.2
#: kernel trick emulates a ~25x effective-bandwidth machine, which is
#: where the crossover lands here too.)
BW_FACTORS = (1.0, 1.5, 6.0, 12.0, 25.0, 50.0)


@dataclass(frozen=True)
class ProjectionPoint:
    bw_factor: float
    base_gflops: float
    ca_gflops: float

    @property
    def gain(self) -> float:
        return self.ca_gflops / self.base_gflops - 1.0 if self.base_gflops else 0.0


def faster_memory(setup: MachineSetup, nodes: int, factor: float):
    """The setup's machine with node memory bandwidth scaled by
    ``factor`` (cache and network untouched)."""
    machine = setup.machine(nodes)
    node = replace(
        machine.node,
        core_stream_bw=machine.node.core_stream_bw * factor,
        node_stream_bw=machine.node.node_stream_bw * factor,
    )
    return replace(machine, node=node)


def sweep(
    setup: MachineSetup = STAMPEDE2,
    nodes: int = 64,
    factors=BW_FACTORS,
) -> list[ProjectionPoint]:
    problem = setup.problem()
    points = []
    for factor in factors:
        machine = faster_memory(setup, nodes, factor)
        base = run(problem, impl="base-parsec", machine=machine,
                   tile=setup.tile, mode="simulate")
        ca = run(problem, impl="ca-parsec", machine=machine,
                 tile=setup.tile, steps=setup.steps, mode="simulate")
        points.append(ProjectionPoint(
            bw_factor=factor, base_gflops=base.gflops, ca_gflops=ca.gflops,
        ))
    return points


def rows(points: list[ProjectionPoint]) -> list[tuple]:
    return [(p.bw_factor, p.base_gflops, p.ca_gflops, f"{p.gain:+.0%}")
            for p in points]
