"""Fig. 5: NetPIPE achieved network bandwidth vs message size.

Regenerates the two curves (NaCL over IB QDR, Stampede2 over
Omni-Path) as fraction-of-theoretical-peak series, plus the numbers
quoted in the text: effective peaks of ~27 and ~86 Gb/s, ~1 us
latency, and the bandwidth-efficiency jump (~20 % -> ~70 % of peak)
that aggregating s iterations of ghost data buys the CA scheme.
"""

from __future__ import annotations

from ..machine import units
from ..machine.machine import MachineSpec, nacl, stampede2
from ..machine.netpipe import model_curve

HEADERS = ("Message size (B)", "NaCL (% of 32 Gb/s)", "Stampede2 (% of 100 Gb/s)")


def curves(min_bytes: int = 256, max_bytes: int = 4 * 1024 * 1024):
    """(sizes, nacl_fractions, stampede2_fractions)."""
    na = model_curve(nacl().network, min_bytes, max_bytes)
    s2 = model_curve(stampede2().network, min_bytes, max_bytes)
    sizes = [p.nbytes for p in na]
    return sizes, [p.fraction_of_peak for p in na], [p.fraction_of_peak for p in s2]


def rows() -> list[tuple]:
    sizes, na, s2 = curves()
    return [(n, 100 * a, 100 * b) for n, a, b in zip(sizes, na, s2)]


def effective_peaks_gbit() -> tuple[float, float]:
    """Modelled saturated bandwidths, Gb/s (paper: ~27, ~86)."""
    return (
        units.to_gbit_s(nacl().network.effective_bw),
        units.to_gbit_s(stampede2().network.effective_bw),
    )


def message_aggregation_gain(machine: MachineSpec, tile: int, steps: int) -> dict:
    """The conclusion's bandwidth-efficiency argument: a base ghost
    strip (tile edge doubles) vs a CA superstep message (steps x edge),
    as fractions of peak bandwidth."""
    net = machine.network
    base_msg = tile * 8
    ca_msg = steps * tile * 8
    return {
        "base_bytes": base_msg,
        "ca_bytes": ca_msg,
        "base_fraction_of_peak": net.fraction_of_peak(base_msg),
        "ca_fraction_of_peak": net.fraction_of_peak(ca_msg),
    }
