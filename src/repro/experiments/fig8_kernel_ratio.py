"""Fig. 8: tuned-kernel performance -- base vs CA across adjustment
ratios and node counts.

The kernel adjustment ratio r updates only an (r*mb) x (r*nb) portion
of each tile, emulating machines with much faster memory; GFLOP/s is
still computed against the *nominal* 9 n^2 FLOP (which is why the
y-axis exceeds the hardware's arithmetic peak).  As r shrinks, the
network becomes the bottleneck and the CA version pulls ahead -- up to
~57 % on 16 NaCL nodes (and ~33 % on Stampede2 at scale); the black
reference line is the base version with the original (r = 1) kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runner import run
from .common import MachineSetup, NODE_COUNTS, RATIOS

HEADERS = ("Nodes", "Ratio", "base GFLOP/s", "CA GFLOP/s", "CA gain")


@dataclass(frozen=True)
class RatioPoint:
    nodes: int
    ratio: float
    base_gflops: float
    ca_gflops: float

    @property
    def gain(self) -> float:
        """CA improvement over base (the paper's headline percentage)."""
        if self.base_gflops <= 0:
            return 0.0
        return self.ca_gflops / self.base_gflops - 1.0


def sweep(
    setup: MachineSetup,
    node_counts=NODE_COUNTS,
    ratios=RATIOS,
    steps: int | None = None,
) -> list[RatioPoint]:
    steps = steps or setup.steps
    problem = setup.problem()
    points = []
    for nodes in node_counts:
        machine = setup.machine(nodes)
        for ratio in ratios:
            base = run(
                problem, impl="base-parsec", machine=machine,
                tile=setup.tile, ratio=ratio, mode="simulate",
            )
            ca = run(
                problem, impl="ca-parsec", machine=machine,
                tile=setup.tile, steps=steps, ratio=ratio, mode="simulate",
            )
            points.append(
                RatioPoint(
                    nodes=nodes, ratio=ratio,
                    base_gflops=base.gflops, ca_gflops=ca.gflops,
                )
            )
    return points


def reference_line(setup: MachineSetup, node_counts=NODE_COUNTS) -> dict[int, float]:
    """The black line of Fig. 8: base version with the original
    (unadjusted) kernel, per node count."""
    out = {}
    for nodes in node_counts:
        res = run(
            setup.problem(), impl="base-parsec", machine=setup.machine(nodes),
            tile=setup.tile, ratio=1.0, mode="simulate",
        )
        out[nodes] = res.gflops
    return out


def rows(setup: MachineSetup, node_counts=NODE_COUNTS, ratios=RATIOS) -> list[tuple]:
    return [
        (p.nodes, p.ratio, p.base_gflops, p.ca_gflops, f"{p.gain:+.0%}")
        for p in sweep(setup, node_counts, ratios)
    ]


def best_gain(points: list[RatioPoint], nodes: int | None = None) -> RatioPoint:
    """The point with the largest CA improvement (optionally per node
    count) -- the source of the 57 % / 33 % headlines."""
    pool = [p for p in points if nodes is None or p.nodes == nodes]
    return max(pool, key=lambda p: p.gain)
