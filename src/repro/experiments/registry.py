"""Experiment registry: every paper table/figure, indexable by id.

Maps experiment ids to their modules, the paper artefact they
regenerate, and the benchmark file that prints them -- the
machine-readable version of DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import (
    fig5_netpipe,
    fig6_tilesize,
    fig7_strong_scaling,
    fig8_kernel_ratio,
    fig9_stepsize,
    fig10_trace,
    headline,
    roofline_exp,
    table1_stream,
)


@dataclass(frozen=True)
class ExperimentEntry:
    id: str
    paper_artifact: str
    description: str
    module: object
    bench: str


REGISTRY: dict[str, ExperimentEntry] = {
    e.id: e
    for e in (
        ExperimentEntry(
            "table1", "Table I", "STREAM bandwidths for NaCL and Stampede2",
            table1_stream, "benchmarks/bench_table1_stream.py",
        ),
        ExperimentEntry(
            "fig5", "Figure 5", "NetPIPE bandwidth vs message size",
            fig5_netpipe, "benchmarks/bench_fig5_netpipe.py",
        ),
        ExperimentEntry(
            "fig6", "Figure 6", "Single-node tile-size tuning",
            fig6_tilesize, "benchmarks/bench_fig6_tilesize.py",
        ),
        ExperimentEntry(
            "fig7", "Figure 7", "Strong scaling: PETSc vs base vs CA",
            fig7_strong_scaling, "benchmarks/bench_fig7_strong_scaling.py",
        ),
        ExperimentEntry(
            "fig8", "Figure 8", "Kernel-adjustment-ratio sweep (base vs CA)",
            fig8_kernel_ratio, "benchmarks/bench_fig8_kernel_ratio.py",
        ),
        ExperimentEntry(
            "fig9", "Figure 9", "CA step-size tuning",
            fig9_stepsize, "benchmarks/bench_fig9_stepsize.py",
        ),
        ExperimentEntry(
            "fig10", "Figure 10", "Execution-trace profiling (occupancy)",
            fig10_trace, "benchmarks/bench_fig10_trace.py",
        ),
        ExperimentEntry(
            "roofline", "Section VI-A", "Roofline effective-peak brackets",
            roofline_exp, "benchmarks/bench_roofline.py",
        ),
        ExperimentEntry(
            "headlines", "Abstract", "2x over PETSc; CA +57%/+33%",
            headline, "benchmarks/bench_headlines.py",
        ),
    )
}


def get(experiment_id: str) -> ExperimentEntry:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choices: {sorted(REGISTRY)}"
        ) from None
