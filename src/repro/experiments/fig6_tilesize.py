"""Fig. 6: single-node base-PaRSEC GFLOP/s vs tile size.

The paper sweeps tile sizes on one node (no network) to pick the
range used by all distributed runs: 200-300 on NaCL (~11 GFLOP/s) and
400-2000 on Stampede2 (~43.5 GFLOP/s).  Small tiles drown in per-task
overhead; oversized tiles starve the workers (fewer tiles than cores)
-- both effects emerge from the engine rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runner import run
from .common import MachineSetup, NACL, STAMPEDE2, full_mode

HEADERS = ("Tile size", "GFLOP/s")

#: Paper sweep ranges; the scaled CI sweep skips the tiniest tiles
#: (hundreds of thousands of tasks) but keeps the optimum bracketed.
FULL_TILES = {
    "NaCL": (50, 100, 200, 288, 300, 400, 500, 700, 1000),
    "Stampede2": (100, 200, 400, 600, 864, 1000, 1500, 2000, 2500, 3000, 3500),
}
SCALED_TILES = {
    "NaCL": (100, 200, 288, 400, 700, 1250, 2000),
    "Stampede2": (100, 400, 864, 1500, 2500, 4608),
}

#: The paper's measured plateaus (GFLOP/s) and optimal ranges.
PAPER_PLATEAU = {"NaCL": 11.0, "Stampede2": 43.5}
PAPER_OPTIMUM = {"NaCL": (200, 300), "Stampede2": (400, 2000)}


@dataclass(frozen=True)
class TilePoint:
    tile: int
    gflops: float
    tasks: int


def sweep(setup: MachineSetup) -> list[TilePoint]:
    """Run the single-node tile sweep for one machine."""
    tiles = (FULL_TILES if full_mode() else SCALED_TILES)[setup.name]
    problem = setup.tuning_problem()
    machine = setup.machine(nodes=1)
    points = []
    for tile in tiles:
        res = run(problem, impl="base-parsec", machine=machine, tile=tile, mode="simulate")
        points.append(TilePoint(tile=tile, gflops=res.gflops, tasks=res.engine.tasks_run))
    return points


def best(points: list[TilePoint]) -> TilePoint:
    return max(points, key=lambda p: p.gflops)


def rows(setup: MachineSetup) -> list[tuple]:
    return [(p.tile, p.gflops) for p in sweep(setup)]


def both() -> dict[str, list[TilePoint]]:
    return {s.name: sweep(s) for s in (NACL, STAMPEDE2)}
