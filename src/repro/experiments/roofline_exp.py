"""Section VI-A numbers: achieved bandwidth and roofline brackets.

The text derives, from STREAM COPY and the stencil's arithmetic
intensity of 0.37-0.56 FLOP/B, effective single-node peaks of
14.5-21.9 GFLOP/s (NaCL) and 63.8-96.6 GFLOP/s (Stampede2).  The
model's brackets land within rounding of those (the paper rounds the
achieved bandwidths to 39.1 / 172.5 GB/s before multiplying).
"""

from __future__ import annotations

from ..machine.machine import nacl, stampede2
from ..machine.roofline import AI_HIGH, AI_LOW, stencil_peak_range

HEADERS = ("System", "BW (GB/s)", "AI low", "AI high", "Peak low (GF/s)", "Peak high (GF/s)")

#: The brackets printed in the paper.
PAPER = {"NaCL": (14.5, 21.9), "Stampede2": (63.8, 96.6)}


def rows() -> list[tuple]:
    out = []
    for machine in (nacl(), stampede2()):
        lo, hi = stencil_peak_range(machine.node)
        out.append(
            (
                machine.name,
                machine.node.node_stream_bw / 1e9,
                AI_LOW,
                AI_HIGH,
                lo / 1e9,
                hi / 1e9,
            )
        )
    return out


def max_relative_error() -> float:
    worst = 0.0
    for row in rows():
        lo_paper, hi_paper = PAPER[row[0]]
        worst = max(worst, abs(row[4] - lo_paper) / lo_paper)
        worst = max(worst, abs(row[5] - hi_paper) / hi_paper)
    return worst
