"""Wire a fault plan into a run, and drive recovery around it.

:class:`ChaosContext` is the single object the runner hands to a
backend: it resolves each task's *global* iteration (restart offsets
included), consults the :class:`~repro.chaos.inject.FaultInjector` at
the two interception points every backend shares (kernel entry,
message delivery), and persists grid checkpoints at the CA exchange
boundaries on the way through.

:func:`run_with_recovery` is the recovery driver the ``repro chaos``
CLI and the resilience suite use: run, catch
:class:`~repro.runtime.engine.NodeLostError`, restart the lost node's
work on the survivors (ownership repartitioned by shrinking the
machine), resuming from the latest complete checkpoint rather than
from scratch.  Because Jacobi is elementwise and tile cores are exact
at every sweep, the recovered grid is *bit-identical* to the
fault-free answer -- the property the whole suite pins.

:func:`execute_with_resume` is the serve-side single-attempt variant:
the service owns the retry budget, so a lost node propagates up as
``NodeLostError`` and the *next* attempt (same signature, same
checkpoint directory) resumes where the last one died.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from ..distgrid.partition import ProcessGrid, RemappedGrid
from ..machine.machine import MachineSpec, nacl
from ..runtime.engine import NodeLostError
from ..stencil.problem import JacobiProblem
from .checkpoint import CheckpointError, CheckpointStore
from .inject import FaultInjector
from .plan import FaultPlan

#: Exit code a chaos-killed node process dies with (distinguishable
#: from crashes in the parent's logs; any nonzero code trips _watch).
KILL_EXIT_CODE = 117


class GridInit:
    """A picklable initialiser replaying a checkpointed grid.

    ``JacobiProblem.init`` accepts a callable evaluated on global index
    arrays; this one answers from a saved grid, so a restarted problem
    begins exactly where the checkpoint left off -- under any
    partitioning, since indices are global.
    """

    def __init__(self, grid: np.ndarray) -> None:
        self.grid = np.ascontiguousarray(grid, dtype=np.float64)

    def __call__(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.grid[rows, cols]


class ChaosContext:
    """One attempt's bridge between a fault plan and a backend.

    ``base`` is the global sweep the attempt starts from (0 for a
    fresh run, the checkpoint step after a restart): every fault and
    checkpoint decision is made in global iterations, so a plan means
    the same thing across restarts and backends.
    """

    def __init__(
        self,
        injector: FaultInjector,
        store: CheckpointStore | None = None,
        base: int = 0,
        checkpoint_every: int | None = None,
    ) -> None:
        self.injector = injector
        self.store = store
        self.base = int(base)
        self.checkpoint_every = checkpoint_every
        self.backend: str | None = None

    # -- runner hook ----------------------------------------------------

    def attach(self, built, backend: str, machine: MachineSpec) -> None:
        """Instrument a freshly built graph in place: adjust simulated
        costs for delay/slow, wrap kernels for kill/delay/slow plus
        checkpointing.  Called by the runner between build and run."""
        self.backend = backend
        inj = self.injector
        spec = getattr(built, "spec", None)
        stencil = spec is not None and hasattr(spec, "tile")
        cadence = None
        if stencil and self.store is not None:
            cadence = self.checkpoint_every or spec.steps
            ntiles = len(list(spec.partition.tiles()))
            self.store.ensure_meta(ntiles, spec.problem.shape, cadence)
            total = self.base + spec.problem.iterations
        for task in built.graph:
            t = task.key[-1]
            gt = self.base + t if isinstance(t, int) and t >= 0 else None
            if gt is not None and backend == "sim":
                task.cost = inj.sim_cost(task.node, gt, task.cost)
            ckpt_step = None
            if (
                cadence is not None
                and gt is not None
                and (gt + 1) % cadence == 0
                and gt + 1 < total  # the final grid ships in the result
            ):
                # This task produces sweep gt+1 values on its core.
                ckpt_step = gt + 1
            if task.kernel is not None and (gt is not None or ckpt_step):
                task.kernel = self._wrap(
                    task.kernel, task.node, gt, ckpt_step,
                    spec if stencil else None, task.key,
                )

    def _wrap(self, kernel, node, gt, ckpt_step, spec, key):
        inj = self.injector
        backend = lambda: self.backend  # resolved at call time  # noqa: E731

        def chaotic_kernel(inputs, task):
            if gt is not None:
                if inj.kill_action(node, gt) is not None:
                    self._die(node)
                if backend() != "sim":
                    extra = inj.sleep_for(node, gt)
                    if extra > 0:
                        time.sleep(extra)
            out = kernel(inputs, task)
            if ckpt_step is not None and spec is not None:
                _, i, j, _ = key
                tile = spec.tile(i, j)
                rs, cs = tile.core_slices()
                self.store.save(ckpt_step, i, j, out["tile"][rs, cs],
                                tile.r0, tile.c0)
            return out

        return chaotic_kernel

    def _die(self, node: int):
        """Lose the node the way the backend would really lose it:
        hard process death on the process mesh (the parent's watcher
        reports it), a raised :class:`NodeLostError` elsewhere."""
        if self.backend == "processes":
            os._exit(KILL_EXIT_CODE)
        step = None
        if self.store is not None:
            try:
                step = self.store.latest_complete()
            except Exception:
                step = None
        raise NodeLostError(
            f"node {node} killed by fault plan", node=node,
            checkpoint_step=step,
        )

    # -- message hook ----------------------------------------------------

    def on_message(self, producer, tag, src: int, dst: int) -> float | None:
        """Drop-fault consult at message-delivery time (the engine's
        arrival event, the courier's ship loop).  Returns the
        retransmit delay in seconds, or None to deliver normally.

        A message's iteration is the sweep whose values it carries:
        the producer task at ``t`` publishes iteration ``t + 1``
        ghosts, so ``drop:...,step=2s`` targets the refresh exchange
        at the superstep boundary, as a reader of the plan expects."""
        t = producer[-1] if isinstance(producer, tuple) else None
        gt = self.base + t + 1 if isinstance(t, int) and t >= -1 else None
        return self.injector.drop_delay(src, dst, gt)


@dataclass
class ChaosResult:
    """What :func:`run_with_recovery` observed end to end."""

    result: Any  # the final successful RunResult
    attempts: int
    restarts: list[dict] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    wall_elapsed: float = 0.0
    tasks_final_attempt: int = 0
    speculations: int = 0

    @property
    def recovered(self) -> bool:
        return bool(self.restarts)

    @property
    def grid(self) -> np.ndarray | None:
        return self.result.grid


def _restore_point(store: CheckpointStore | None):
    """The newest checkpoint that actually reassembles, as
    ``(step, grid)`` -- ``(None, None)`` when none does.  A step whose
    tile-count quorum was met by a *mixed* set (possible after a
    re-tiling restart changed the tile census) fails assembly and is
    skipped rather than trusted."""
    if store is None:
        return None, None
    for step in reversed(store.complete_steps()):
        try:
            return step, store.load_grid(step)
        except CheckpointError:
            continue
    return None, None


def _publish_chaos_metrics(metrics, chaos_result: ChaosResult) -> None:
    if metrics is None:
        return
    c_faults = metrics.counter(
        "chaos_faults_injected_total", help="faults fired by the plan"
    )
    counts: dict[str, int] = {}
    for rec in chaos_result.faults:
        counts[rec["kind"]] = counts.get(rec["kind"], 0) + 1
    for kind, count in sorted(counts.items()):
        c_faults.inc(count, kind=kind)
    if chaos_result.restarts:
        metrics.counter(
            "chaos_recoveries_total", help="checkpoint restarts performed"
        ).inc(len(chaos_result.restarts))
        c_lost = metrics.counter(
            "chaos_nodes_lost_total",
            help="node deaths that triggered a restart",
        )
        lost: dict[str, int] = {}
        for restart in chaos_result.restarts:
            node = str(restart.get("node", "?"))
            lost[node] = lost.get(node, 0) + 1
        for node, count in sorted(lost.items()):
            c_lost.inc(count, node=node)
    if chaos_result.speculations:
        metrics.counter(
            "chaos_speculations_total",
            help="straggler tasks speculatively re-executed",
        ).inc(chaos_result.speculations)


def run_with_recovery(
    problem: JacobiProblem,
    plan: FaultPlan,
    impl: str = "ca-parsec",
    machine: MachineSpec | None = None,
    tile: int | None = None,
    steps: int = 4,
    ratio: float = 1.0,
    policy: str = "priority",
    backend: str = "sim",
    jobs: int | None = None,
    pgrid=None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    max_restarts: int = 3,
    metrics=None,
    trace: bool = False,
    speculate: bool = False,
) -> ChaosResult:
    """Run ``problem`` under ``plan``, recovering from lost nodes.

    Each :class:`NodeLostError` triggers one restart: ownership is
    repartitioned onto the survivors (``machine.with_nodes(n - 1)``,
    unless a ``pgrid`` pins the layout or one node remains) and the
    run resumes from the latest *complete* checkpoint -- from scratch
    only when the node died before the first boundary.  Durable fault
    markers guarantee a consumed kill cannot re-fire on the retry.
    """
    from ..core.runner import run

    if isinstance(steps, str) or isinstance(tile, str):
        raise ValueError("chaos runs need concrete tile/steps (no 'auto')")
    machine = machine or nacl(4)
    s = steps if impl == "ca-parsec" else 1

    import tempfile

    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        checkpoint_dir = tmp.name
    workdir = Path(checkpoint_dir)
    try:
        injector = FaultInjector(plan, s=s, workdir=workdir)
        store = CheckpointStore(workdir / "ckpt") if impl != "petsc" else None
        cadence = checkpoint_every or s

        cur_problem = problem
        cur_machine = machine
        cur_pgrid = pgrid
        # Tile geometry is pinned by the *original* node arrangement;
        # shrinking only renumbers ownership (RemappedGrid), so every
        # restart reuses checkpointed tiles one-to-one.
        base_grid = pgrid or ProcessGrid.square(machine.nodes)
        geometry_ok = True  # flips off once a restart had to re-tile
        alive = list(range(machine.nodes))
        base = 0
        attempts = 0
        restarts: list[dict] = []
        t0 = time.perf_counter()
        while True:
            attempts += 1
            ctx = ChaosContext(
                injector, store=store, base=base, checkpoint_every=cadence
            )
            eff_steps = steps
            if impl == "ca-parsec" and cur_problem.iterations > 0:
                eff_steps = max(1, min(steps, cur_problem.iterations))
            try:
                result = run(
                    cur_problem, impl=impl, machine=cur_machine, tile=tile,
                    steps=eff_steps, ratio=ratio, mode="execute",
                    policy=policy, trace=trace, pgrid=cur_pgrid,
                    backend=backend, jobs=jobs, metrics=metrics, chaos=ctx,
                )
                break
            except NodeLostError as exc:
                if len(restarts) >= max_restarts:
                    raise
                ckpt, grid = _restore_point(store)
                if len(alive) > 1 and pgrid is None:
                    # exc.node is a rank of the *current* machine; alive
                    # maps it back to the original block it stood for.
                    dead = (
                        alive[exc.node]
                        if exc.node is not None and 0 <= exc.node < len(alive)
                        else alive[-1]
                    )
                    alive.remove(dead)
                    cur_machine = cur_machine.with_nodes(len(alive))
                    if impl != "petsc" and geometry_ok:
                        cur_pgrid = RemappedGrid.shrink(base_grid, alive)
                        if cur_pgrid is None:
                            # A whole process-grid column died: geometry
                            # cannot be preserved safely -- re-tile for
                            # the survivor count from here on.
                            geometry_ok = False
                if ckpt:
                    cur_problem = replace(
                        problem,
                        iterations=problem.iterations - ckpt,
                        init=GridInit(grid),
                    )
                    base = ckpt
                else:
                    cur_problem = problem
                    base = 0
                restarts.append({
                    "node": exc.node,
                    "checkpoint": ckpt,
                    "nodes_after": len(alive),
                    "reason": str(exc),
                })
        wall = time.perf_counter() - t0

        speculations = 0
        if speculate and trace and result.trace is not None and store is not None:
            from ..obs.critpath import find_stragglers

            stragglers = find_stragglers(result.trace)
            ckpt, ckpt_grid = _restore_point(store)
            if stragglers and ckpt and ckpt < problem.iterations:
                # Speculative duplicate of the straggling tail: re-run
                # from the latest checkpoint and check it agrees.
                tail = replace(
                    problem,
                    iterations=problem.iterations - ckpt,
                    init=GridInit(ckpt_grid),
                )
                spec_result = run(
                    tail, impl=impl, machine=cur_machine, tile=tile,
                    steps=max(1, min(steps, tail.iterations)) if impl == "ca-parsec" else steps,
                    ratio=ratio, mode="execute", policy=policy,
                    pgrid=cur_pgrid, backend=backend, jobs=jobs,
                )
                if not np.array_equal(spec_result.grid, result.grid):
                    raise RuntimeError(
                        "speculative re-execution diverged from the "
                        "primary result"
                    )
                speculations = len(stragglers)

        chaos_result = ChaosResult(
            result=result,
            attempts=attempts,
            restarts=restarts,
            faults=injector.firing_log(),
            wall_elapsed=wall,
            tasks_final_attempt=result.engine.tasks_run,
            speculations=speculations,
        )
        _publish_chaos_metrics(metrics, chaos_result)
        return chaos_result
    finally:
        if tmp is not None:
            tmp.cleanup()


def execute_with_resume(
    request,
    metrics=None,
    on_executor=None,
    checkpoint_dir: str | Path | None = None,
    lifecycle=None,
    trace_id: str | None = None,
    parent_span_id: str | None = None,
    want_trace: bool = False,
):
    """Serve-side chaos execution: ONE attempt, resuming from this
    signature's latest checkpoint if an earlier attempt died.

    The service owns the retry budget, so a lost node propagates as
    :class:`NodeLostError` for the batch-failure path to catch; the
    retried job lands back here, finds the checkpoint directory warm,
    and finishes the remaining sweeps instead of starting over.
    Returns a :class:`~repro.serve.request.SolveOutcome` whose
    ``recovered`` / ``faults_injected`` fields record what happened.

    ``lifecycle``/``trace_id`` (a worker's span log plus the request's
    lifecycle context) record a ``recover`` span under
    ``parent_span_id`` when the attempt resumed from a checkpoint;
    ``want_trace`` captures the execution-level trace on the outcome.
    """
    import tempfile

    from ..core.runner import run
    from ..serve.request import outcome_from_result
    from .plan import parse_plan

    plan = parse_plan(request.chaos_plan)
    signature = request.signature()
    root = (
        Path(checkpoint_dir)
        if checkpoint_dir is not None
        else Path(tempfile.gettempdir()) / "repro-serve-chaos"
    )
    workdir = root / signature[:16]
    workdir.mkdir(parents=True, exist_ok=True)

    s = request.steps if request.impl == "ca-parsec" else 1
    injector = FaultInjector(plan, s=s, workdir=workdir)
    store = CheckpointStore(workdir / "ckpt") if request.impl != "petsc" else None

    t_restore = time.monotonic()
    ckpt, ckpt_grid = _restore_point(store)
    problem = request.problem
    base = 0
    if ckpt:
        problem = replace(
            request.problem,
            iterations=request.problem.iterations - ckpt,
            init=GridInit(ckpt_grid),
        )
        base = ckpt
        if lifecycle is not None and trace_id is not None:
            lifecycle.span(
                trace_id, "recover", t_restore, time.monotonic(),
                tenant=request.tenant, parent_span_id=parent_span_id,
                checkpoint_step=ckpt,
                iterations_remaining=problem.iterations,
            )
    ctx = ChaosContext(injector, store=store, base=base, checkpoint_every=s)

    eff_steps = request.steps
    if request.impl == "ca-parsec" and problem.iterations > 0:
        eff_steps = max(1, min(request.steps, problem.iterations))
    result = run(
        problem,
        impl=request.impl,
        machine=request.machine,
        tile=request.resolved_tile(),
        steps=eff_steps,
        ratio=request.ratio,
        mode="execute",
        policy=request.policy,
        backend=request.backend,
        jobs=request.jobs,
        trace=want_trace,
        metrics=metrics,
        on_executor=on_executor,
        chaos=ctx,
    )
    outcome = outcome_from_result(
        result, signature, tenant=request.tenant, warm=False
    )
    outcome.recovered = bool(ckpt)
    outcome.faults_injected = len(injector.firing_log())
    outcome.trace_id = trace_id
    if want_trace:
        outcome.trace = result.trace
    if metrics is not None:
        counts: dict[str, int] = {}
        for rec in injector.firing_log():
            counts[rec["kind"]] = counts.get(rec["kind"], 0) + 1
        c = metrics.counter(
            "chaos_faults_injected_total", help="faults fired by the plan"
        )
        for kind, count in sorted(counts.items()):
            c.inc(count, kind=kind)
        if ckpt:
            metrics.counter(
                "chaos_recoveries_total", help="checkpoint restarts performed"
            ).inc()
            # A resume implies the previous attempt died mid-run; the
            # node-lost alert rule can watch this from the merged
            # registry even when the failing attempt's error swallowed
            # its own metrics.
            metrics.counter(
                "chaos_nodes_lost_total",
                help="node deaths that triggered a restart",
            ).inc(node="resumed")
    return outcome


__all__ = [
    "ChaosContext",
    "ChaosResult",
    "GridInit",
    "KILL_EXIT_CODE",
    "execute_with_resume",
    "run_with_recovery",
]
