"""repro.chaos -- fault injection and checkpoint/restart recovery.

Resilience as a first-class, *testable* property of the runtime: a
seeded :class:`FaultPlan` (kill-node, delay-task, slow-node,
drop-message) replays identically on the simulator, the thread pool
and the process mesh, because faults fire as pure functions of task
identity ``(node, global iteration)`` rather than schedule order.
Recovery restarts a lost node's work on the survivors from the latest
grid checkpoint at a CA exchange boundary, and -- Jacobi being
elementwise -- reproduces the fault-free answer *bit-identically*,
which is exactly what the property suite pins.

Entry points
------------
* :func:`parse_plan` / :func:`random_plan` -- build a plan from the
  CLI grammar or a seed;
* :func:`run_with_recovery` -- run a problem under a plan with
  checkpoint-restart recovery (the ``repro chaos`` command);
* :class:`ChaosContext` -- the runner hook (``run(..., chaos=ctx)``);
* :class:`CheckpointStore` -- the on-disk tile checkpoint format;
* :func:`execute_with_resume` -- the serve integration (one attempt,
  resuming from the job signature's latest checkpoint).
"""

from ..runtime.engine import KernelError, NodeLostError
from .checkpoint import CheckpointError, CheckpointStore
from .harness import (
    ChaosContext,
    ChaosResult,
    GridInit,
    KILL_EXIT_CODE,
    execute_with_resume,
    run_with_recovery,
)
from .inject import FaultInjector
from .plan import (
    DEFAULT_DELAY_S,
    DEFAULT_RETRANSMIT_S,
    DEFAULT_SLOW_FACTOR,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    PlanError,
    parse_plan,
    random_plan,
)

__all__ = [
    "DEFAULT_DELAY_S",
    "DEFAULT_RETRANSMIT_S",
    "DEFAULT_SLOW_FACTOR",
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "ChaosContext",
    "ChaosResult",
    "CheckpointError",
    "CheckpointStore",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "GridInit",
    "KernelError",
    "NodeLostError",
    "PlanError",
    "execute_with_resume",
    "parse_plan",
    "random_plan",
    "run_with_recovery",
]
