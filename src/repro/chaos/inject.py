"""The fault injector: plan in, deterministic firings out.

One :class:`FaultInjector` serves a whole recovery session (possibly
several run attempts, possibly several OS processes).  Two invariants
make the same plan replay identically on the simulator, the thread
pool and the process mesh:

* **Identity-based firing.**  Whether a fault applies to a task is a
  pure function of ``(node, global iteration)`` -- never of schedule
  order, queue state or wall time.  The three backends intercept at
  equivalent points (kernel entry, message delivery), so they all ask
  the same questions and get the same answers.
* **Durable fire-once markers.**  Each fault owns a marker file under
  the session's work directory, created atomically (``open(..., "x")``)
  the first time it fires.  Markers survive process death and restart
  attempts, so a kill consumed in attempt 1 cannot re-fire in attempt
  2 (which would loop recovery forever), and a forked node process
  agrees with its parent about what has already happened.

The injector is deliberately free when idle: backends consult it only
when a chaos context is attached, so resilience costs nothing on the
hot path of a fault-free run (the Collom-et-al. property).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from .plan import (
    DEFAULT_DELAY_S,
    DEFAULT_RETRANSMIT_S,
    DEFAULT_SLOW_FACTOR,
    FaultPlan,
)

#: Base per-task seconds a ``slow`` fault stretches on the measured
#: backends (the simulator scales the modelled cost instead).
SLOW_BASE_S = 0.001


class FaultInjector:
    """Decide, durably and exactly once per fault, what fires when."""

    def __init__(
        self,
        plan: FaultPlan,
        s: int = 1,
        workdir: str | Path | None = None,
    ) -> None:
        self.plan = plan
        self.s = max(1, int(s))
        self.faults = list(plan.faults)
        #: resolved target iteration per fault (None = any/always)
        self.steps = [f.resolve_step(self.s) for f in self.faults]
        self.workdir: Path | None = None
        if workdir is not None:
            self.workdir = Path(workdir) / "faults"
            self.workdir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._logged: set[int] = set()
        if self.workdir is not None:
            for idx in range(len(self.faults)):
                if self._marker(idx).exists():
                    self._logged.add(idx)

    # -- firing records --------------------------------------------------

    def _marker(self, idx: int) -> Path:
        assert self.workdir is not None
        return self.workdir / f"fired-{idx:03d}.json"

    def fired(self, idx: int) -> bool:
        with self._lock:
            if idx in self._logged:
                return True
        if self.workdir is not None and self._marker(idx).exists():
            with self._lock:
                self._logged.add(idx)
            return True
        return False

    def log_once(self, idx: int, **detail) -> bool:
        """Record that fault ``idx`` fired; True exactly once globally
        (atomic marker creation arbitrates across threads *and*
        processes)."""
        with self._lock:
            if idx in self._logged:
                return False
            if self.workdir is None:
                self._logged.add(idx)
                return True
            doc = {"index": idx, "kind": self.faults[idx].kind,
                   "spec": self.faults[idx].spec(), **detail}
            try:
                with open(self._marker(idx), "x") as fh:
                    json.dump(doc, fh)
            except FileExistsError:
                self._logged.add(idx)
                return False
            self._logged.add(idx)
            return True

    def firing_log(self) -> list[dict]:
        """Every fault that has fired, as ``{"index", "kind", "spec"}``
        dicts sorted by plan position -- the canonical order the
        determinism suite compares (identity-only, so it is equal
        across backends and repeats by construction)."""
        out: list[dict] = []
        for idx, fault in enumerate(self.faults):
            if self.fired(idx):
                out.append({"index": idx, "kind": fault.kind,
                            "spec": fault.spec()})
        return out

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for rec in self.firing_log():
            counts[rec["kind"]] = counts.get(rec["kind"], 0) + 1
        return counts

    # -- task-entry decisions -------------------------------------------

    def kill_action(self, node: int, gt: int | None):
        """The kill fault claiming this task, after atomically marking
        it fired -- or None.  ``gt`` is the task's *global* iteration
        (restart offsets included); None matches only step-less kills."""
        for idx, fault in enumerate(self.faults):
            if fault.kind != "kill" or fault.node != node:
                continue
            step = self.steps[idx]
            if step is not None and step != gt:
                continue
            if self.log_once(idx, node=node, step=step):
                return fault
        return None

    def sleep_for(self, node: int, gt: int | None) -> float:
        """Extra wall seconds this task owes on the measured backends
        (delay faults at its iteration plus the node's slow factor)."""
        total = 0.0
        for idx, fault in enumerate(self.faults):
            if fault.node != node:
                continue
            if fault.kind == "delay":
                step = self.steps[idx]
                if step is not None and step != gt:
                    continue
                self.log_once(idx, node=node, step=step)
                total += fault.secs if fault.secs is not None else DEFAULT_DELAY_S
            elif fault.kind == "slow":
                self.log_once(idx, node=node)
                base = fault.secs if fault.secs is not None else SLOW_BASE_S
                factor = fault.factor if fault.factor is not None \
                    else DEFAULT_SLOW_FACTOR
                total += base * max(0.0, factor - 1.0)
        return total

    def sim_cost(self, node: int, gt: int | None, cost: float) -> float:
        """The simulator's form of delay/slow: adjust the task's
        modelled cost (virtual clock), applied once at attach time."""
        for idx, fault in enumerate(self.faults):
            if fault.node != node:
                continue
            if fault.kind == "slow":
                factor = fault.factor if fault.factor is not None \
                    else DEFAULT_SLOW_FACTOR
                cost = cost * factor
                self.log_once(idx, node=node)
            elif fault.kind == "delay":
                step = self.steps[idx]
                if step is not None and step != gt:
                    continue
                cost = cost + (fault.secs if fault.secs is not None
                               else DEFAULT_DELAY_S)
                self.log_once(idx, node=node, step=step)
        return cost

    # -- message decisions -----------------------------------------------

    def drop_delay(self, src: int, dst: int, gt: int | None) -> float | None:
        """Retransmit delay if an unfired drop fault matches this
        message, marking it fired -- else None (deliver normally)."""
        for idx, fault in enumerate(self.faults):
            if fault.kind != "drop":
                continue
            if fault.src is not None and fault.src != src:
                continue
            if fault.dst is not None and fault.dst != dst:
                continue
            step = self.steps[idx]
            if step is not None and step != gt:
                continue
            if self.log_once(idx, src=src, dst=dst, step=step):
                return fault.secs if fault.secs is not None \
                    else DEFAULT_RETRANSMIT_S
        return None


__all__ = ["FaultInjector", "SLOW_BASE_S"]
