"""Seeded fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, fingerprintable list of
:class:`Fault` entries.  Four fault kinds cover the failure modes the
recovery machinery must survive:

* ``kill``  -- the node is lost at iteration ``step`` (hard process
  death on the processes backend, a raised
  :class:`~repro.runtime.engine.NodeLostError` elsewhere);
* ``delay`` -- every task of the node at iteration ``step`` takes
  ``secs`` extra seconds (virtual cost on the simulator, a real sleep
  on the measured backends) -- the straggler generator;
* ``slow``  -- every task of the node runs ``factor``x slower for the
  whole run (a degraded node rather than a point fault);
* ``drop``  -- the first matching ``src -> dst`` message of iteration
  ``step`` is dropped once and retransmitted after ``secs``.

Timing is expressed in *iterations*, not wall seconds, because that is
what makes one plan replay identically on the discrete-event
simulator, the thread pool and the process mesh: a fault fires as a
pure function of task identity ``(node, iteration)``, never of
schedule order.  A step may be written ``"2s"`` -- two CA supersteps
-- and is resolved against the run's step size ``s``, tying fault
timing to the paper's exchange boundaries (where checkpoints live).

The plan grammar (the CLI's ``--plan``) is ``;``-separated faults,
each ``kind:key=value,key=value``::

    kill:node=3,step=2s
    kill:node=3,step=2s;delay:node=1,step=3,secs=0.01
    drop:src=0,dst=1,step=1s;slow:node=2,factor=3
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass

FAULT_KINDS = ("kill", "delay", "slow", "drop")

#: Default extra seconds of a ``delay`` fault.
DEFAULT_DELAY_S = 0.005
#: Default retransmit wait of a ``drop`` fault (seconds; virtual on
#: the simulator, slept by the courier on the processes backend).
DEFAULT_RETRANSMIT_S = 0.002
#: Default slowdown of a ``slow`` fault.
DEFAULT_SLOW_FACTOR = 3.0


class PlanError(ValueError):
    """A fault plan failed to parse or validate."""


@dataclass(frozen=True)
class Fault:
    """One planned fault.  ``step`` counts iterations from 0 and may
    be the string ``"<k>s"`` (k supersteps), resolved against the
    run's step size by :meth:`resolve_step`; None means "the first
    matching opportunity"."""

    kind: str
    node: int | None = None
    step: int | str | None = None
    src: int | None = None
    dst: int | None = None
    secs: float | None = None
    factor: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise PlanError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.kind in ("kill", "delay", "slow") and self.node is None:
            raise PlanError(f"{self.kind} faults need node=<id>")
        if self.kind == "slow" and self.factor is not None and self.factor <= 0:
            raise PlanError(f"slow factor must be positive, got {self.factor}")
        if self.secs is not None and self.secs < 0:
            raise PlanError(f"secs cannot be negative, got {self.secs}")
        if isinstance(self.step, str):
            body = self.step[:-1]
            if not (self.step.endswith("s") and body.isdigit()):
                raise PlanError(
                    f"step must be an iteration index or '<k>s', got {self.step!r}"
                )

    def resolve_step(self, s: int) -> int | None:
        """The concrete iteration index this fault targets, given the
        run's CA step size ``s`` (``"2s"`` -> ``2 * s``)."""
        if isinstance(self.step, str):
            return int(self.step[:-1]) * s
        return self.step

    def spec(self) -> str:
        """The parseable one-fault string (inverse of :func:`parse_plan`)."""
        parts = [f"{k}={v}" for k, v in asdict(self).items()
                 if k != "kind" and v is not None]
        return self.kind + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded set of faults; hashable and fingerprintable
    so determinism tests can pin 'same plan' exactly."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def spec(self) -> str:
        return ";".join(f.spec() for f in self.faults)

    def fingerprint(self) -> str:
        doc = {"seed": self.seed, "faults": [asdict(f) for f in self.faults]}
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def __len__(self) -> int:
        return len(self.faults)


_INT_KEYS = ("node", "step", "src", "dst")
_FLOAT_KEYS = ("secs", "factor")


def _parse_value(key: str, raw: str):
    if key in _INT_KEYS:
        if key == "step" and raw.endswith("s"):
            return raw  # superstep-relative; resolved later
        try:
            return int(raw)
        except ValueError as exc:
            raise PlanError(f"{key} must be an integer, got {raw!r}") from exc
    if key in _FLOAT_KEYS:
        try:
            return float(raw)
        except ValueError as exc:
            raise PlanError(f"{key} must be a number, got {raw!r}") from exc
    raise PlanError(
        f"unknown fault field {key!r}; choices: {_INT_KEYS + _FLOAT_KEYS}"
    )


def parse_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Parse ``"kill:node=3,step=2s;delay:node=1,step=3"`` into a
    :class:`FaultPlan`."""
    faults: list[Fault] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, body = chunk.partition(":")
        kwargs: dict = {}
        if body:
            for pair in body.split(","):
                key, eq, raw = pair.partition("=")
                if not eq:
                    raise PlanError(
                        f"malformed fault field {pair!r} (expected key=value)"
                    )
                kwargs[key.strip()] = _parse_value(key.strip(), raw.strip())
        faults.append(Fault(kind=kind.strip(), **kwargs))
    if not faults:
        raise PlanError(f"no faults in plan spec {spec!r}")
    return FaultPlan(faults=tuple(faults), seed=seed)


def random_plan(
    seed: int,
    nodes: int,
    iterations: int,
    kinds: tuple[str, ...] = ("kill", "delay"),
    max_faults: int = 3,
    max_kills: int = 1,
) -> FaultPlan:
    """A seeded random plan for property tests: ``random.Random(seed)``
    drives every choice, so the same seed is the same plan forever."""
    rng = random.Random(seed)
    count = rng.randint(1, max(1, max_faults))
    faults: list[Fault] = []
    kills = 0
    for _ in range(count):
        kind = rng.choice(kinds)
        if kind == "kill":
            if kills >= max_kills:
                kind = "delay" if "delay" in kinds else None
                if kind is None:
                    continue
            else:
                kills += 1
        node = rng.randrange(nodes)
        step = rng.randrange(iterations)
        if kind == "kill":
            faults.append(Fault(kind="kill", node=node, step=step))
        elif kind == "delay":
            faults.append(Fault(
                kind="delay", node=node, step=step,
                secs=rng.choice((0.001, 0.002, 0.005)),
            ))
        elif kind == "slow":
            faults.append(Fault(
                kind="slow", node=node, factor=rng.choice((2.0, 3.0)),
            ))
        else:  # drop
            dst = rng.randrange(nodes)
            faults.append(Fault(
                kind="drop", src=node, dst=dst if dst != node else None,
                step=step,
            ))
    return FaultPlan(faults=tuple(faults), seed=seed)


__all__ = [
    "DEFAULT_DELAY_S",
    "DEFAULT_RETRANSMIT_S",
    "DEFAULT_SLOW_FACTOR",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "PlanError",
    "parse_plan",
    "random_plan",
]
