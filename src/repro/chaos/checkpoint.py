"""On-disk grid checkpoints at CA exchange boundaries.

The CA scheme makes every ``s``-th iteration a natural recovery line:
tile cores hold exact iteration-``c`` values there (they hold exact
values at *every* iteration -- the conformance suite proves it -- but
the superstep boundary is where the paper's scheme is also globally
exchanged, so checkpointing there costs one extra copy per superstep
and aligns recovery with the algorithm's own cadence).

A :class:`CheckpointStore` is a directory of raw ``.npy`` tiles, one
file per ``(step, tile)``, with the tile's *global* coordinates
encoded in the file name -- so a restart may repartition ownership
(fewer nodes, a different process grid) and still reassemble the
identical grid, and both save and load stay a single contiguous
read/write per tile (an order of magnitude cheaper than a zip
container, which matters because checkpointing sits on the hot path
of every superstep).  Writes are atomic (tmp + rename) and
idempotent; a step counts as *complete* only when every expected tile
is present, so a node dying mid-checkpoint can never produce a
restartable-but-torn state.  Because the store is plain files, it
survives process death -- exactly the property the processes
backend's recovery path needs.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path

import numpy as np

_TILE_RE = re.compile(r"^step(\d+)_(\d+)_(\d+)_r(\d+)_c(\d+)\.npy$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or reassembled."""


class CheckpointStore:
    """A directory of per-(step, tile) grid checkpoints.

    ``meta.json`` records the expected tile count and grid shape;
    :meth:`ensure_meta` writes it once (first writer wins, so every
    forked node process agrees on completeness).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._meta: dict | None = None

    # -- metadata --------------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.root / "meta.json"

    def ensure_meta(self, ntiles: int, shape: tuple[int, int],
                    cadence: int) -> None:
        if self.meta_path.exists():
            return
        doc = {"ntiles": int(ntiles), "shape": [int(shape[0]), int(shape[1])],
               "cadence": int(cadence)}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, self.meta_path)

    def meta(self) -> dict | None:
        if self._meta is None and self.meta_path.exists():
            with open(self.meta_path) as fh:
                self._meta = json.load(fh)
        return self._meta

    # -- writes ----------------------------------------------------------

    def tile_path(self, step: int, i: int, j: int, r0: int, c0: int) -> Path:
        return self.root / f"step{step:06d}_{i}_{j}_r{r0}_c{c0}.npy"

    def save(self, step: int, i: int, j: int, core: np.ndarray,
             r0: int, c0: int) -> None:
        """Atomically persist one tile core at global sweep ``step``.
        A repeated save of the same tile (a retried superstep) is a
        no-op: the data is identical by determinism."""
        path = self.tile_path(step, i, j, r0, c0)
        if path.exists():
            return
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, np.ascontiguousarray(core))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- reads -----------------------------------------------------------

    def steps_on_disk(self) -> dict[int, int]:
        """step -> number of tile files present."""
        counts: dict[int, int] = {}
        for entry in self.root.iterdir():
            m = _TILE_RE.match(entry.name)
            if m:
                step = int(m.group(1))
                counts[step] = counts.get(step, 0) + 1
        return counts

    def complete_steps(self) -> list[int]:
        """Sweeps with a full tile set, ascending (restartable points)."""
        meta = self.meta()
        if meta is None:
            return []
        want = meta["ntiles"]
        return sorted(s for s, n in self.steps_on_disk().items() if n >= want)

    def latest_complete(self) -> int | None:
        steps = self.complete_steps()
        return steps[-1] if steps else None

    def load_grid(self, step: int) -> np.ndarray:
        """Reassemble the full grid of sweep ``step`` from its tiles
        (partition-independent: tiles carry global coordinates)."""
        meta = self.meta()
        if meta is None:
            raise CheckpointError(f"no meta.json under {self.root}")
        grid = np.full(tuple(meta["shape"]), np.nan)
        found = 0
        for entry in sorted(self.root.iterdir()):
            m = _TILE_RE.match(entry.name)
            if not m or int(m.group(1)) != step:
                continue
            core = np.load(entry)
            r0, c0 = int(m.group(4)), int(m.group(5))
            grid[r0:r0 + core.shape[0], c0:c0 + core.shape[1]] = core
            found += 1
        if found < meta["ntiles"]:
            raise CheckpointError(
                f"checkpoint step {step} incomplete: {found} of "
                f"{meta['ntiles']} tiles on disk"
            )
        if np.isnan(grid).any():  # pragma: no cover - defensive
            raise CheckpointError(
                f"checkpoint step {step} left uncovered cells"
            )
        return grid

    def clear(self) -> None:
        for entry in self.root.iterdir():
            if _TILE_RE.match(entry.name):
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - concurrent clear
                    pass


__all__ = ["CheckpointError", "CheckpointStore"]
