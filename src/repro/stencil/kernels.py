"""Vectorised 5-point Jacobi update kernels.

The paper uses the general weighted form (eq. 1):

    x'[i,j] = w_c*x[i,j] + w_n*x[i-1,j] + w_s*x[i+1,j]
            + w_w*x[i,j-1] + w_e*x[i,j+1]

with 5 multiplies + 4 adds = 9 FLOP per point for *every*
implementation, so FLOP/s numbers are comparable across PETSc, base
and CA versions.  The kernels here operate on a tile's extended
(ghost-padded) array and update an arbitrary rectangular region, which
is what the CA version needs to update core-plus-shrinking-halo
regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: FLOP per point of the general 5-point update.
FLOP_PER_POINT = 9


@dataclass(frozen=True)
class StencilWeights:
    """Constant coefficients of the 5-point stencil, one per neighbour.

    The default is the classic Jacobi sweep for Laplace's equation:
    the new value is the average of the four neighbours.
    """

    center: float = 0.0
    north: float = 0.25
    south: float = 0.25
    west: float = 0.25
    east: float = 0.25

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.center, self.north, self.south, self.west, self.east)

    @classmethod
    def laplace_jacobi(cls) -> "StencilWeights":
        return cls()

    @classmethod
    def damped_jacobi(cls, omega: float = 0.8) -> "StencilWeights":
        """Weighted Jacobi: x' = (1-w)*x + w*avg(neighbours)."""
        if not 0 < omega <= 1:
            raise ValueError("relaxation factor must be in (0, 1]")
        return cls(center=1.0 - omega, north=omega / 4, south=omega / 4,
                   west=omega / 4, east=omega / 4)

    @classmethod
    def heat_explicit(cls, alpha_dt_h2: float = 0.2) -> "StencilWeights":
        """Explicit Euler step of the heat equation, stable for
        ``alpha*dt/h^2 <= 0.25``."""
        if not 0 < alpha_dt_h2 <= 0.25:
            raise ValueError("alpha*dt/h^2 must be in (0, 0.25] for stability")
        k = alpha_dt_h2
        return cls(center=1.0 - 4 * k, north=k, south=k, west=k, east=k)


def jacobi_update_region(
    ext: np.ndarray,
    weights: StencilWeights,
    rows: slice,
    cols: slice,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute updated values for ``ext[rows, cols]`` reading the four
    neighbours from ``ext``; ``ext`` is not modified.

    ``rows``/``cols`` are slices into the *extended* array and must
    leave at least one ring of valid data around the region.  The
    computation is fully vectorised with shifted views (no copies of
    ``ext``), per the numpy-optimisation idioms.
    """
    r0, r1 = rows.start, rows.stop
    c0, c1 = cols.start, cols.stop
    if r0 < 1 or c0 < 1 or r1 > ext.shape[0] - 1 or c1 > ext.shape[1] - 1:
        raise IndexError(
            f"update region rows {r0}:{r1} cols {c0}:{c1} leaves no "
            f"neighbour ring inside array of shape {ext.shape}"
        )
    if r1 <= r0 or c1 <= c0:
        return np.empty((max(0, r1 - r0), max(0, c1 - c0)))
    wc, wn, ws, ww, we = weights.as_tuple()
    if out is None:
        out = np.empty((r1 - r0, c1 - c0))
    np.multiply(ext[r0:r1, c0:c1], wc, out=out)
    tmp = np.multiply(ext[r0 - 1 : r1 - 1, c0:c1], wn)
    out += tmp
    np.multiply(ext[r0 + 1 : r1 + 1, c0:c1], ws, out=tmp)
    out += tmp
    np.multiply(ext[r0:r1, c0 - 1 : c1 - 1], ww, out=tmp)
    out += tmp
    np.multiply(ext[r0:r1, c0 + 1 : c1 + 1], we, out=tmp)
    out += tmp
    return out


def jacobi_sweep_framed(
    framed: np.ndarray, weights: StencilWeights, depth: int = 1
) -> np.ndarray:
    """One full Jacobi sweep over the interior of a framed array (frame
    of ``depth`` boundary cells); returns a new framed array with the
    frame preserved.  Used by the single-array reference solver."""
    if framed.shape[0] <= 2 * depth or framed.shape[1] <= 2 * depth:
        raise ValueError("framed array smaller than its frame")
    rows = slice(depth, framed.shape[0] - depth)
    cols = slice(depth, framed.shape[1] - depth)
    new = framed.copy()
    new[rows, cols] = jacobi_update_region(framed, weights, rows, cols)
    return new


def region_flops(rows: slice | tuple, cols: slice | tuple) -> int:
    """FLOP count of updating a region (9 per point)."""
    if isinstance(rows, slice):
        nr = rows.stop - rows.start
    else:
        nr = rows[1] - rows[0]
    if isinstance(cols, slice):
        nc = cols.stop - cols.start
    else:
        nc = cols[1] - cols[0]
    return FLOP_PER_POINT * max(0, nr) * max(0, nc)
