"""Single-array reference Jacobi solver -- the numerical ground truth.

Every distributed implementation (base-PaRSEC, CA-PaRSEC, PETSc-lite)
is property-tested to produce bit-identical results to this solver,
which performs the textbook two-buffer Jacobi sweep on one dense array
with an explicit Dirichlet frame.
"""

from __future__ import annotations

import numpy as np

from ..distgrid.boundary import DirichletBC
from .variable import apply_stencil_region


def jacobi_reference(
    grid: np.ndarray,
    weights,
    iterations: int,
    bc: DirichletBC | None = None,
    source: np.ndarray | None = None,
) -> np.ndarray:
    """Run ``iterations`` Jacobi sweeps over ``grid`` and return the
    final grid (the input is not modified).

    The grid holds the unknowns; Dirichlet values from ``bc`` surround
    it (constant in time, like the paper's Laplace problem).  An
    optional ``source`` array is added after every sweep (damped-Jacobi
    forcing for Poisson problems).
    """
    if iterations < 0:
        raise ValueError("iteration count cannot be negative")
    if grid.ndim != 2:
        raise ValueError("grid must be 2-D")
    bc = bc or DirichletBC(0.0)
    nrows, ncols = grid.shape
    framed = bc.frame(nrows, ncols, depth=1)
    framed[1:-1, 1:-1] = grid
    rows = slice(1, nrows + 1)
    cols = slice(1, ncols + 1)
    cur = framed
    nxt = framed.copy()
    if source is not None and source.shape != grid.shape:
        raise ValueError(f"source shape {source.shape} != grid {grid.shape}")
    for _ in range(iterations):
        # framed[0, 0] is global cell (-1, -1).
        nxt[rows, cols] = apply_stencil_region(
            cur, weights, rows, cols, origin=(-1, -1)
        )
        if source is not None:
            nxt[rows, cols] += source
        cur, nxt = nxt, cur
    return cur[rows, cols].copy()


def residual_norm(
    grid: np.ndarray, weights, bc: DirichletBC | None = None,
    source: np.ndarray | None = None,
) -> float:
    """Infinity norm of ``x - S(x)`` where S is one stencil sweep --
    zero exactly at the fixed point the Jacobi iteration converges to."""
    swept = jacobi_reference(grid, weights, 1, bc, source=source)
    return float(np.max(np.abs(swept - grid)))
