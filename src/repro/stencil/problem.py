"""Problem specification: what to solve, independent of how.

A :class:`JacobiProblem` bundles the grid extents, the stencil
weights, the initial state, the Dirichlet boundary and the iteration
count -- everything the three implementations share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..distgrid.boundary import DirichletBC
from .kernels import FLOP_PER_POINT, StencilWeights
from .reference import jacobi_reference

Initializer = float | Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class JacobiProblem:
    """A 2D 5-point Jacobi run.

    Parameters
    ----------
    n:
        Grid rows; ``ncols`` defaults to ``n`` (the paper's grids are
        square: 20k, 23k, 27k, 55k).
    iterations:
        Jacobi sweeps to perform (the paper runs 100).
    weights:
        Stencil coefficients: a constant :class:`StencilWeights` (the
        paper's evaluation) or a per-point
        :class:`~repro.stencil.variable.VariableStencilWeights`.
    init:
        Initial grid values: a constant or a vectorised callable
        ``f(rows, cols)`` over global indices.
    bc:
        Dirichlet boundary values surrounding the grid.
    source:
        Optional per-point forcing added after every sweep:
        ``x' = S(x) + source``.  With weights ``damped_jacobi(omega)``
        and ``source = omega*h^2/4 * f`` this is exactly the damped
        Jacobi iteration for the Poisson problem ``-Lap(u) = f``, so
        the task-based implementations solve real PDEs, not only
        homogeneous sweeps.  Constant or vectorised callable of global
        indices; None disables the term (and its memory traffic).
    """

    n: int
    iterations: int
    ncols: int | None = None
    weights: StencilWeights = field(default_factory=StencilWeights.laplace_jacobi)
    init: Initializer = 0.0
    bc: DirichletBC = field(default_factory=lambda: DirichletBC(1.0))
    source: Initializer | None = None

    def __post_init__(self) -> None:
        if self.n < 1 or (self.ncols is not None and self.ncols < 1):
            raise ValueError("grid extents must be positive")
        if self.iterations < 0:
            raise ValueError("iteration count cannot be negative")

    @property
    def nrows(self) -> int:
        return self.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.ncols if self.ncols is not None else self.n)

    @property
    def points(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def total_flops(self) -> int:
        """Nominal useful FLOP of the whole run: 9 n^2 per iteration,
        the figure all the paper's GFLOP/s numbers divide by."""
        return FLOP_PER_POINT * self.points * self.iterations

    def initial_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Evaluate the initialiser on global index arrays."""
        if callable(self.init):
            out = np.asarray(self.init(rows, cols), dtype=np.float64)
            if out.shape != rows.shape:
                raise ValueError(
                    f"initialiser returned shape {out.shape}, expected {rows.shape}"
                )
            return out
        return np.full(rows.shape, float(self.init))

    def initial_grid(self) -> np.ndarray:
        rows, cols = np.meshgrid(
            np.arange(self.shape[0]), np.arange(self.shape[1]), indexing="ij"
        )
        return self.initial_values(rows, cols)

    def source_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray | None:
        """Evaluate the forcing term on global index arrays (None when
        the problem has no source)."""
        if self.source is None:
            return None
        if callable(self.source):
            out = np.asarray(self.source(rows, cols), dtype=np.float64)
            if out.shape != rows.shape:
                raise ValueError(
                    f"source returned shape {out.shape}, expected {rows.shape}"
                )
            return out
        return np.full(rows.shape, float(self.source))

    def source_grid(self) -> np.ndarray | None:
        if self.source is None:
            return None
        rows, cols = np.meshgrid(
            np.arange(self.shape[0]), np.arange(self.shape[1]), indexing="ij"
        )
        return self.source_values(rows, cols)

    def reference_solution(self) -> np.ndarray:
        """Ground-truth final grid from the single-array solver."""
        return jacobi_reference(
            self.initial_grid(), self.weights, self.iterations, self.bc,
            source=self.source_grid(),
        )
