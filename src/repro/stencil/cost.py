"""Kernel cost model: how long a stencil task takes on the machine.

The stencil is memory-bound, so task duration is modelled as bytes
moved over achievable per-worker bandwidth (roofline), with three
refinements the paper's evaluation depends on:

* **kernel efficiency** -- the unoptimised loop kernel reaches only a
  fraction of the STREAM bound (Fig. 6: ~11 of 15-22 GFLOP/s on NaCL);
* **cache spill** -- tiles whose working set exceeds the per-worker L3
  share pay the uncached 24 B/point instead of ~20 B/point (the gentle
  right-hand decline of Fig. 6);
* **kernel adjustment ratio** -- section VI-D's knob: only a
  ``(ratio*mb) x (ratio*nb)`` portion of the tile is updated,
  emulating a faster memory system.  Following the paper, the ratio
  run "simulates the kernel time without the extra computation", so
  redundant CA halo work is excluded from task time when ratio < 1,
  while ghost-copy costs remain (they are what make the CA kernel's
  median time longer in Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import MachineSpec
from .kernels import FLOP_PER_POINT


@dataclass(frozen=True)
class KernelCostModel:
    """Time model for stencil tasks on one machine.

    Parameters
    ----------
    machine:
        Machine model (node bandwidths, cache, core counts).
    ratio:
        Kernel adjustment ratio r in (0, 1]: updated points scale by
        r^2, reproducing the paper's tuned-kernel experiments.
    include_redundant:
        Charge CA's replicated halo updates.  Default: only when
        ratio == 1 (real kernels), per the paper's simulation choice.
    bytes_per_point:
        Memory traffic per updated point with cache-resident
        neighbours (read x, write x': 16 B, plus partial top/bottom
        row misses: ~20 B).
    bytes_per_point_spill:
        Traffic when the tile working set spills out of the L3 share
        (all three rows miss: 24 B).
    l3_bytes:
        Node L3 capacity used to detect spills (2 x 12 MB on NaCL,
        2 x 33 MB on Stampede2-SKX); 0 (the default) takes the value
        from the machine's node spec.
    """

    machine: MachineSpec
    ratio: float = 1.0
    include_redundant: bool | None = None
    bytes_per_point: float = 20.0
    bytes_per_point_spill: float = 24.0
    l3_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError("kernel adjustment ratio must be in (0, 1]")
        if self.bytes_per_point <= 0 or self.bytes_per_point_spill < self.bytes_per_point:
            raise ValueError("bytes/point must be positive and spill >= cached")

    @property
    def charges_redundant(self) -> bool:
        if self.include_redundant is not None:
            return self.include_redundant
        return self.ratio == 1.0

    def _bpp(self, tile_points: int, workers: int) -> float:
        """Bytes per point for a tile of ``tile_points`` cells: spills
        when read+write working set exceeds this worker's L3 share."""
        l3 = self.l3_bytes if self.l3_bytes else self.machine.node.l3_bytes
        if l3 > 0:
            working_set = 2 * 8 * tile_points
            if working_set > l3 / max(1, workers):
                return self.bytes_per_point_spill
        return self.bytes_per_point

    def point_time(self, tile_points: int, workers: int) -> float:
        """Seconds per updated point for one worker among ``workers``
        concurrently streaming cores."""
        node = self.machine.node
        bw = node.worker_stream_bw(workers) * node.kernel_efficiency
        return self._bpp(tile_points, workers) / bw

    def update_cost(
        self,
        core_points: int,
        redundant_points: int,
        tile_points: int,
        workers: int,
    ) -> float:
        """Kernel time of one task updating ``core_points`` useful and
        ``redundant_points`` replicated points."""
        pt = self.point_time(tile_points, workers)
        scale = self.ratio * self.ratio
        cost = core_points * scale * pt
        if self.charges_redundant:
            cost += redundant_points * scale * pt
        return cost

    def copy_cost(self, nbytes: float) -> float:
        """Ghost assembly / extended-array copy time.  Not scaled by
        the adjustment ratio: the data movement of the task body
        happens regardless of how much of the tile the simulated
        kernel updates."""
        return self.machine.local_copy_time(nbytes)

    def task_cost(
        self,
        core_points: int,
        redundant_points: int,
        copy_bytes: float,
        tile_points: int,
        workers: int,
    ) -> float:
        """Total modelled task duration (kernel + copies)."""
        return self.update_cost(
            core_points, redundant_points, tile_points, workers
        ) + self.copy_cost(copy_bytes)

    def node_gflops_bound(self, workers: int) -> float:
        """The single-node GFLOP/s this model can reach with every
        worker busy on large-enough tiles -- the Fig. 6 plateau."""
        pt = self.point_time(1, workers)
        return workers * FLOP_PER_POINT / pt / 1e9
