"""Variable-coefficient 5-point stencils.

Section III-A of the paper distinguishes constant-coefficient stencils
(one weight per direction for the whole grid -- what the evaluation
uses) from *variable-coefficient* stencils whose weights "differ at
each grid point", the form general PDE discretisations produce.  This
module adds the variable form across the whole stack: the coefficient
field is a time-invariant function of the global grid position, so it
is replicated (read-only) on every node and requires no communication
-- only the kernels change.

The FLOP count per point stays the paper's 9 (5 multiplies + 4 adds);
memory traffic per point grows by the five coefficient loads, which
:meth:`VariableStencilWeights.bytes_per_point_extra` reports for cost
models that want to charge it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: A coefficient field: constant, or a vectorised callable of global
#: (row, col) index arrays.
Coefficient = float | Callable[[np.ndarray, np.ndarray], np.ndarray]


def _evaluate(coef: Coefficient, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    if callable(coef):
        out = np.asarray(coef(rows, cols), dtype=np.float64)
        if out.shape != rows.shape:
            raise ValueError(
                f"coefficient field returned shape {out.shape}, expected {rows.shape}"
            )
        return out
    return np.full(rows.shape, float(coef))


@dataclass(frozen=True)
class VariableStencilWeights:
    """Per-point weights of the 5-point update:

        x'[i,j] = c[i,j]*x[i,j] + n[i,j]*x[i-1,j] + s[i,j]*x[i+1,j]
                + w[i,j]*x[i,j-1] + e[i,j]*x[i,j+1]

    Each field is a constant or a vectorised callable of the *global*
    grid indices, evaluated lazily on whatever region a kernel updates
    (tiles never materialise the whole-grid field).
    """

    center: Coefficient = 0.0
    north: Coefficient = 0.25
    south: Coefficient = 0.25
    west: Coefficient = 0.25
    east: Coefficient = 0.25

    def evaluate(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(center, north, south, west, east) fields on a region."""
        return (
            _evaluate(self.center, rows, cols),
            _evaluate(self.north, rows, cols),
            _evaluate(self.south, rows, cols),
            _evaluate(self.west, rows, cols),
            _evaluate(self.east, rows, cols),
        )

    @staticmethod
    def bytes_per_point_extra() -> int:
        """Extra traffic per updated point versus the constant form:
        five double loads of coefficients."""
        return 5 * 8

    @classmethod
    def from_diffusivity(
        cls, kappa: Callable[[np.ndarray, np.ndarray], np.ndarray], dt_h2: float = 0.2
    ) -> "VariableStencilWeights":
        """Explicit step of the heterogeneous heat equation
        ``u_t = div(kappa grad u)`` with a cell-centred diffusivity
        field: neighbour weights are the face-averaged diffusivities
        scaled by dt/h^2, the centre weight balances them (row sum 1,
        so a constant field is stationary away from the boundary)."""
        if dt_h2 <= 0:
            raise ValueError("dt/h^2 must be positive")

        def face(dr: int, dc: int):
            def f(r, c):
                return dt_h2 * 0.5 * (kappa(r, c) + kappa(r + dr, c + dc))

            return f

        north, south = face(-1, 0), face(1, 0)
        west, east = face(0, -1), face(0, 1)

        def center(r, c):
            return 1.0 - (north(r, c) + south(r, c) + west(r, c) + east(r, c))

        return cls(center=center, north=north, south=south, west=west, east=east)


def jacobi_update_region_variable(
    ext: np.ndarray,
    weights: VariableStencilWeights,
    rows: slice,
    cols: slice,
    origin: tuple[int, int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Variable-coefficient version of
    :func:`repro.stencil.kernels.jacobi_update_region`.

    ``origin`` is the global (row, col) of ``ext[0, 0]`` so the
    coefficient fields can be evaluated at the right grid positions.
    """
    r0, r1 = rows.start, rows.stop
    c0, c1 = cols.start, cols.stop
    if r0 < 1 or c0 < 1 or r1 > ext.shape[0] - 1 or c1 > ext.shape[1] - 1:
        raise IndexError(
            f"update region rows {r0}:{r1} cols {c0}:{c1} leaves no "
            f"neighbour ring inside array of shape {ext.shape}"
        )
    if r1 <= r0 or c1 <= c0:
        return np.empty((max(0, r1 - r0), max(0, c1 - c0)))
    gr, gc = np.meshgrid(
        np.arange(origin[0] + r0, origin[0] + r1),
        np.arange(origin[1] + c0, origin[1] + c1),
        indexing="ij",
    )
    wc, wn, ws, ww, we = weights.evaluate(gr, gc)
    if out is None:
        out = np.empty((r1 - r0, c1 - c0))
    np.multiply(ext[r0:r1, c0:c1], wc, out=out)
    out += wn * ext[r0 - 1 : r1 - 1, c0:c1]
    out += ws * ext[r0 + 1 : r1 + 1, c0:c1]
    out += ww * ext[r0:r1, c0 - 1 : c1 - 1]
    out += we * ext[r0:r1, c0 + 1 : c1 + 1]
    return out


def apply_stencil_region(
    ext: np.ndarray,
    weights,
    rows: slice,
    cols: slice,
    origin: tuple[int, int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch on the weight kind: constant weights ignore ``origin``,
    variable weights need it.  This is the single entry point the
    dataflow kernels and the reference solver share."""
    from .kernels import StencilWeights, jacobi_update_region

    if isinstance(weights, VariableStencilWeights):
        return jacobi_update_region_variable(ext, weights, rows, cols, origin, out)
    if isinstance(weights, StencilWeights):
        return jacobi_update_region(ext, weights, rows, cols, out)
    raise TypeError(f"unsupported weights type {type(weights).__name__}")
