"""Stencil kernels, problem specs, the reference solver and the kernel
cost model."""

from .cost import KernelCostModel
from .kernels import (
    FLOP_PER_POINT,
    StencilWeights,
    jacobi_sweep_framed,
    jacobi_update_region,
    region_flops,
)
from .problem import JacobiProblem
from .reference import jacobi_reference, residual_norm
from .variable import (
    VariableStencilWeights,
    apply_stencil_region,
    jacobi_update_region_variable,
)

__all__ = [
    "FLOP_PER_POINT",
    "JacobiProblem",
    "KernelCostModel",
    "StencilWeights",
    "VariableStencilWeights",
    "apply_stencil_region",
    "jacobi_reference",
    "jacobi_sweep_framed",
    "jacobi_update_region",
    "jacobi_update_region_variable",
    "region_flops",
    "residual_norm",
]
