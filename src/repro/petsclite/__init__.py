"""PETSc-lite: the distributed SpMV substrate the baseline runs on.

Reproduces the PETSc pieces the paper's baseline uses: row-block
distributed ``Vec``s, ``MatMPIAIJ``-style matrices with
diagonal/off-diagonal splitting and overlapped ``MatMult``,
``VecScatter`` ghost gathers, DMDA-like structured-grid assembly of
the weighted 5-point operator, and the SpMV memory-traffic model
behind the 2x performance gap of Fig. 7.
"""

from .cost import SpMVCostModel
from .ksp import KSPResult, cg, jacobi_preconditioner, poisson_system, richardson
from .da import (
    ghost_indices,
    grid_to_vec,
    jacobi_operator,
    natural_layout,
    stencil_coo,
    vec_to_grid,
)
from .mat import MatAIJ
from .scatter import ScatterPlan
from .vec import Vec, VecLayout

__all__ = [
    "KSPResult",
    "MatAIJ",
    "cg",
    "jacobi_preconditioner",
    "poisson_system",
    "richardson",
    "ScatterPlan",
    "SpMVCostModel",
    "Vec",
    "VecLayout",
    "ghost_indices",
    "grid_to_vec",
    "jacobi_operator",
    "natural_layout",
    "stencil_coo",
    "vec_to_grid",
]
