"""Memory-traffic cost model for the SpMV formulation.

The paper explains PETSc's ~2x deficit against the tiled stencil:
"instead of having the weight matrix be represented with only 5
numbers, the update will involve both sparse matrix indices and the
corresponding values.  This, at the very least, doubles the number of
memory loads (64-bit integers) that are needed for the same amount of
floating point operations."

We adopt exactly that accounting: the SpMV row moves the stencil's
~20 B of vector traffic *plus* an equal volume of matrix metadata
(5 x 8 B column indices per row, with the 5 x 8 B values partially
amortised by streaming), i.e. ``bytes_per_row ~= 2x`` the stencil's
bytes/point, at the same kernel efficiency.  The full unamortised
accounting (40 B values + 40 B indices + 8 B rowptr + 16 B vectors ~=
104 B/row) is exposed through ``bytes_per_row`` for sensitivity
studies; the default reproduces the paper's observed factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import MachineSpec


@dataclass(frozen=True)
class SpMVCostModel:
    """Duration model for one rank's SpMV rows.

    PETSc runs one MPI rank per core, so every core streams
    concurrently and each sees its node-bandwidth share.
    """

    machine: MachineSpec
    bytes_per_row: float = 40.0

    def __post_init__(self) -> None:
        if self.bytes_per_row <= 0:
            raise ValueError("bytes_per_row must be positive")

    def row_time(self) -> float:
        """Seconds per matrix row on one of ``cores`` busy ranks."""
        node = self.machine.node
        bw = node.worker_stream_bw(node.cores) * node.kernel_efficiency
        return self.bytes_per_row / bw

    def task_cost(self, local_rows: int) -> float:
        """One rank's per-iteration kernel time."""
        if local_rows < 0:
            raise ValueError("row count cannot be negative")
        return local_rows * self.row_time()

    def node_gflops_bound(self) -> float:
        """Aggregate node GFLOP/s bound of the SpMV formulation (9
        nominal FLOP per row)."""
        return 9 * self.machine.node.cores / self.row_time() / 1e9
