"""Distributed sparse matrices in PETSc's MPIAIJ format.

Each rank owns a block of rows, stored as *two* CSR matrices: the
diagonal block A (columns the rank owns -- multiplied without any
communication) and the off-diagonal block B (remote columns, compacted
through ``garray`` like PETSc).  ``mult`` follows PETSc's overlapped
schedule: start the scatter, apply A, finish the scatter, apply B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .scatter import ScatterPlan
from .vec import Vec, VecLayout


@dataclass
class _RankBlocks:
    """Per-rank pieces of an MPIAIJ matrix."""

    diag: sp.csr_matrix
    offdiag: sp.csr_matrix  # columns indexed into garray
    garray: np.ndarray  # global column of each compacted off-diag column


class MatAIJ:
    """A row-distributed sparse matrix with PETSc MatMPIAIJ semantics."""

    def __init__(self, row_layout: VecLayout, col_layout: VecLayout, blocks: list[_RankBlocks]):
        if len(blocks) != row_layout.nranks:
            raise ValueError("one block pair per rank required")
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.blocks = blocks
        self.scatter = ScatterPlan.build(
            col_layout, [b.garray for b in blocks]
        )

    # -- assembly -------------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        row_layout: VecLayout,
        col_layout: VecLayout,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> "MatAIJ":
        """Assemble from global COO triplets (duplicates are summed,
        like ADD_VALUES assembly)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows/cols/vals must have identical shapes")
        blocks = []
        for rank in range(row_layout.nranks):
            r0, r1 = row_layout.range_of(rank)
            c0, c1 = col_layout.range_of(rank)
            mine = (rows >= r0) & (rows < r1)
            lr = rows[mine] - r0
            lc = cols[mine]
            lv = vals[mine]
            on_diag = (lc >= c0) & (lc < c1)
            diag = sp.coo_matrix(
                (lv[on_diag], (lr[on_diag], lc[on_diag] - c0)),
                shape=(r1 - r0, c1 - c0),
            ).tocsr()
            off_rows = lr[~on_diag]
            off_cols_global = lc[~on_diag]
            garray = np.unique(off_cols_global)
            off_cols = np.searchsorted(garray, off_cols_global)
            offdiag = sp.coo_matrix(
                (lv[~on_diag], (off_rows, off_cols)),
                shape=(r1 - r0, garray.size),
            ).tocsr()
            blocks.append(_RankBlocks(diag=diag, offdiag=offdiag, garray=garray))
        return cls(row_layout, col_layout, blocks)

    # -- operations -------------------------------------------------------------

    def mult(self, x: Vec, y: Vec | None = None) -> Vec:
        """y = A @ x with PETSc's overlapped schedule (scatter begin,
        diagonal multiply, scatter end, off-diagonal multiply)."""
        if x.layout != self.col_layout:
            raise ValueError("x layout mismatch")
        y = y if y is not None else Vec(self.row_layout)
        for rank in range(self.row_layout.nranks):
            y.locals[rank] = self.mult_local(x, rank)
        return y

    def mult_local(self, x: Vec, rank: int) -> np.ndarray:
        """One rank's rows of A @ x (used by the task-graph driver)."""
        ghosts = self.scatter.gather(x, rank)
        return self.apply_blocks(rank, x.local(rank), ghosts)

    def apply_blocks(
        self, rank: int, x_local: np.ndarray, x_ghost: np.ndarray
    ) -> np.ndarray:
        """Diagonal-plus-offdiagonal multiply from explicit buffers."""
        blocks = self.blocks[rank]
        out = blocks.diag @ x_local
        if blocks.garray.size:
            out += blocks.offdiag @ x_ghost
        return out

    def nnz(self) -> int:
        return sum(int(b.diag.nnz + b.offdiag.nnz) for b in self.blocks)

    def to_dense(self) -> np.ndarray:
        """Gather the whole matrix (tests/small problems only)."""
        n, m = self.row_layout.n, self.col_layout.n
        out = np.zeros((n, m))
        for rank, blocks in enumerate(self.blocks):
            r0, r1 = self.row_layout.range_of(rank)
            c0, c1 = self.col_layout.range_of(rank)
            out[r0:r1, c0:c1] = blocks.diag.toarray()
            if blocks.garray.size:
                dense_off = blocks.offdiag.toarray()
                for k, gcol in enumerate(blocks.garray):
                    out[r0:r1, gcol] += dense_off[:, k]
        return out
