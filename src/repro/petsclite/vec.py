"""Distributed vectors with PETSc-style row-block layouts.

PETSc gives each MPI process a contiguous block of vector entries
(``PetscSplitOwnership``: sizes differing by at most one).  We simulate
all ranks in one process: a :class:`Vec` is a list of per-rank local
arrays plus the shared :class:`VecLayout`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..distgrid.partition import even_split


@dataclass(frozen=True)
class VecLayout:
    """Ownership map of a global vector of ``n`` entries over
    ``nranks`` processes."""

    n: int
    nranks: int

    def __post_init__(self) -> None:
        if self.n < self.nranks or self.nranks < 1:
            raise ValueError(
                f"cannot lay {self.n} entries out over {self.nranks} ranks"
            )

    @cached_property
    def ranges(self) -> tuple[int, ...]:
        """``nranks + 1`` offsets; rank r owns [ranges[r], ranges[r+1])."""
        sizes = even_split(self.n, self.nranks)
        offsets = [0]
        for s in sizes:
            offsets.append(offsets[-1] + s)
        return tuple(offsets)

    def range_of(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} outside layout of {self.nranks}")
        return self.ranges[rank], self.ranges[rank + 1]

    def local_size(self, rank: int) -> int:
        lo, hi = self.range_of(rank)
        return hi - lo

    def owner(self, index: int) -> int:
        """Rank owning global ``index`` (binary search, like PETSc's
        ``PetscLayoutFindOwner``)."""
        if not 0 <= index < self.n:
            raise IndexError(f"global index {index} outside vector of {self.n}")
        return bisect_right(self.ranges, index) - 1

    def owners(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner`."""
        idx = np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise IndexError("global indices outside the vector")
        return np.searchsorted(np.asarray(self.ranges), idx, side="right") - 1


class Vec:
    """A distributed vector: one local numpy array per rank."""

    def __init__(self, layout: VecLayout, locals_: list[np.ndarray] | None = None):
        self.layout = layout
        if locals_ is None:
            locals_ = [np.zeros(layout.local_size(r)) for r in range(layout.nranks)]
        if len(locals_) != layout.nranks:
            raise ValueError("one local array per rank required")
        for r, arr in enumerate(locals_):
            if arr.shape != (layout.local_size(r),):
                raise ValueError(
                    f"rank {r} local size {arr.shape} != {layout.local_size(r)}"
                )
        self.locals = locals_

    # -- construction -----------------------------------------------------

    @classmethod
    def from_global(cls, layout: VecLayout, values: np.ndarray) -> "Vec":
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape != (layout.n,):
            raise ValueError(f"global array of {values.shape} != ({layout.n},)")
        return cls(
            layout,
            [values[slice(*layout.range_of(r))].copy() for r in range(layout.nranks)],
        )

    def duplicate(self) -> "Vec":
        return Vec(self.layout, [a.copy() for a in self.locals])

    # -- access ------------------------------------------------------------

    def local(self, rank: int) -> np.ndarray:
        return self.locals[rank]

    def to_global(self) -> np.ndarray:
        return np.concatenate(self.locals)

    # -- BLAS-ish operations --------------------------------------------------

    def norm(self, ord: float = 2) -> float:
        return float(np.linalg.norm(self.to_global(), ord=ord))

    def axpy(self, alpha: float, x: "Vec") -> "Vec":
        """self += alpha * x (in place, like VecAXPY)."""
        self._check_compatible(x)
        for mine, theirs in zip(self.locals, x.locals):
            mine += alpha * theirs
        return self

    def scale(self, alpha: float) -> "Vec":
        for mine in self.locals:
            mine *= alpha
        return self

    def set(self, alpha: float) -> "Vec":
        for mine in self.locals:
            mine[:] = alpha
        return self

    def dot(self, x: "Vec") -> float:
        self._check_compatible(x)
        return float(
            sum(np.dot(a, b) for a, b in zip(self.locals, x.locals))
        )

    def swap(self, x: "Vec") -> None:
        """Exchange contents with ``x`` (the two-solution-vector swap of
        the paper's PETSc Jacobi loop)."""
        self._check_compatible(x)
        self.locals, x.locals = x.locals, self.locals

    def _check_compatible(self, x: "Vec") -> None:
        if x.layout != self.layout:
            raise ValueError("vectors have different layouts")
