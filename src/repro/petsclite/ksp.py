"""KSP-lite: Krylov and stationary solvers on the distributed substrate.

The paper's introduction motivates the stencil/SpMV kernel through the
solvers built on it -- "stationary iterative methods ... as well as
non-stationary and projection methods employing geometric multigrid
and Krylov solvers" -- and the communication-avoiding literature it
builds on (Demmel et al., Hoemmen) is about exactly these iterations.
This module provides the solver layer over :class:`~repro.petsclite
.mat.MatAIJ` / :class:`~repro.petsclite.vec.Vec`: Richardson (the
paper's Jacobi loop), conjugate gradients, and Jacobi-preconditioned
CG, with operation counters (SpMVs, global reductions) so the
communication behaviour is inspectable -- every dot product is an
allreduce on a real machine, which is what s-step Krylov methods trade
away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .mat import MatAIJ
from .vec import Vec


@dataclass
class KSPResult:
    """Outcome of a solve."""

    x: Vec
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    #: communication-relevant operation counts
    spmvs: int = 0
    reductions: int = 0  # dot products / norms (allreduces)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _check_system(A: MatAIJ, b: Vec, x0: Vec | None) -> Vec:
    if A.row_layout != A.col_layout:
        raise ValueError("solvers need a square operator")
    if b.layout != A.row_layout:
        raise ValueError("right-hand side layout mismatch")
    if x0 is None:
        return Vec(A.col_layout)
    if x0.layout != A.col_layout:
        raise ValueError("initial guess layout mismatch")
    return x0.duplicate()


def richardson(
    A: MatAIJ,
    b: Vec,
    x0: Vec | None = None,
    omega: float = 1.0,
    rtol: float = 1e-8,
    maxiter: int = 1000,
) -> KSPResult:
    """Richardson iteration x <- x + omega (b - A x).

    With ``A`` the sweep operator written as ``I - S`` this is exactly
    the paper's two-vector Jacobi loop.
    """
    x = _check_system(A, b, x0)
    result = KSPResult(x=x, converged=False, iterations=0)
    bnorm = b.norm()
    result.reductions += 1
    if bnorm == 0.0:
        x.scale(0.0)
        result.converged = True
        return result
    for k in range(maxiter):
        r = b.duplicate()
        r.axpy(-1.0, A.mult(x))
        result.spmvs += 1
        rnorm = r.norm()
        result.reductions += 1
        result.residual_norms.append(rnorm)
        if rnorm <= rtol * bnorm:
            result.converged = True
            result.iterations = k
            return result
        x.axpy(omega, r)
    result.iterations = maxiter
    return result


def jacobi_preconditioner(A: MatAIJ) -> Vec:
    """The inverse diagonal of A as a Vec (PCJACOBI)."""
    inv = Vec(A.row_layout)
    for rank in range(A.row_layout.nranks):
        diag = A.blocks[rank].diag.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("Jacobi preconditioner needs a nonzero diagonal")
        inv.locals[rank] = 1.0 / diag
    return inv


def _pointwise_mult(scale: Vec, v: Vec) -> Vec:
    out = v.duplicate()
    for mine, s in zip(out.locals, scale.locals):
        mine *= s
    return out


def cg(
    A: MatAIJ,
    b: Vec,
    x0: Vec | None = None,
    rtol: float = 1e-8,
    maxiter: int = 1000,
    preconditioner: Vec | None = None,
) -> KSPResult:
    """(Preconditioned) conjugate gradients for SPD ``A``.

    ``preconditioner`` is a diagonal M^-1 as produced by
    :func:`jacobi_preconditioner`.  Each iteration costs one SpMV and
    two global reductions (plus the convergence-check norm), the
    communication profile s-step CA-Krylov methods restructure.
    """
    x = _check_system(A, b, x0)
    result = KSPResult(x=x, converged=False, iterations=0)
    bnorm = b.norm()
    result.reductions += 1
    if bnorm == 0.0:
        x.scale(0.0)
        result.converged = True
        return result

    r = b.duplicate()
    r.axpy(-1.0, A.mult(x))
    result.spmvs += 1
    z = _pointwise_mult(preconditioner, r) if preconditioner is not None else r.duplicate()
    p = z.duplicate()
    rz = r.dot(z)
    result.reductions += 1
    for k in range(maxiter):
        rnorm = r.norm()
        result.reductions += 1
        result.residual_norms.append(rnorm)
        if rnorm <= rtol * bnorm:
            result.converged = True
            result.iterations = k
            return result
        Ap = A.mult(p)
        result.spmvs += 1
        pAp = p.dot(Ap)
        result.reductions += 1
        if pAp <= 0:
            raise ValueError(
                "operator is not positive definite (p'Ap = %g)" % pAp
            )
        alpha = rz / pAp
        x.axpy(alpha, p)
        r.axpy(-alpha, Ap)
        z = _pointwise_mult(preconditioner, r) if preconditioner is not None else r.duplicate()
        rz_next = r.dot(z)
        result.reductions += 1
        beta = rz_next / rz
        rz = rz_next
        p.scale(beta)
        p.axpy(1.0, z)
    result.iterations = maxiter
    return result


def poisson_system(problem, nranks: int = 1) -> tuple[MatAIJ, Vec]:
    """The SPD linear system of the Dirichlet Poisson/Laplace problem
    behind a :class:`~repro.stencil.problem.JacobiProblem`:

        (4 I - N) x = b_bc

    where N sums the four in-domain neighbours and ``b_bc`` collects
    the boundary contributions.  The Jacobi iteration the paper runs
    is the classical splitting of exactly this system, so its fixed
    point is this system's solution -- tests exploit that.
    """
    from ..stencil.kernels import StencilWeights
    from .da import natural_layout, stencil_coo

    nrows, ncols = problem.shape
    # stencil_coo builds op(x) = A x + b with A holding the given
    # weights on in-domain entries and b = sum(weight * bc) on the
    # rest.  With weights (4, -1, -1, -1, -1): A = 4I - N and
    # b = -sum(bc), so the system is A x = -b.
    rows, cols, vals, b = stencil_coo(
        nrows, ncols,
        StencilWeights(center=4.0, north=-1.0, south=-1.0, west=-1.0, east=-1.0),
        problem.bc,
    )
    layout = natural_layout(nrows, ncols, nranks)
    A = MatAIJ.from_coo(layout, layout, rows, cols, vals)
    return A, Vec.from_global(layout, -b)
