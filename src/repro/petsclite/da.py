"""DMDA-lite: 2D structured grids as distributed vectors + the 5-point
operator as an assembled sparse matrix.

The paper's PETSc implementation "simply expand[s] the 2D compute grid
points into 1D solution vector, and the corresponding 5 points stencil
update expresses as a sparse matrix", partitioned by rows.  This
module does exactly that: natural (row-major) ordering, even row-block
ownership, COO assembly of the weighted 5-point operator, and the
Dirichlet contributions folded into a right-hand-side vector so that
one Jacobi sweep is ``x' = A x + b``.
"""

from __future__ import annotations

import numpy as np

from ..distgrid.boundary import DirichletBC
from ..stencil.problem import JacobiProblem
from ..stencil.variable import VariableStencilWeights
from .mat import MatAIJ
from .vec import Vec, VecLayout


def natural_layout(nrows: int, ncols: int, nranks: int) -> VecLayout:
    """Row-block layout of the flattened (row-major) grid."""
    return VecLayout(n=nrows * ncols, nranks=nranks)


def grid_to_vec(grid: np.ndarray, layout: VecLayout) -> Vec:
    """Scatter a 2D grid into a distributed vector (row-major)."""
    if grid.size != layout.n:
        raise ValueError(f"grid of {grid.size} cells != vector of {layout.n}")
    return Vec.from_global(layout, grid.ravel())


def vec_to_grid(vec: Vec, nrows: int, ncols: int) -> np.ndarray:
    """Gather a distributed vector back into its 2D grid."""
    return vec.to_global().reshape(nrows, ncols)


def stencil_coo(
    nrows: int, ncols: int, weights, bc: DirichletBC
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Global COO triplets of the weighted 5-point operator plus the
    Dirichlet right-hand side: sweep(x) == A x + b.

    Fully vectorised; every in-domain neighbour becomes a matrix entry,
    every out-of-domain neighbour contributes ``weight * bc`` to b.
    """
    n = nrows * ncols
    idx = np.arange(n, dtype=np.int64)
    r, c = divmod(idx, ncols)
    if isinstance(weights, VariableStencilWeights):
        wc, wn, ws, ww, we = weights.evaluate(r, c)
    else:
        wc, wn, ws, ww, we = (np.full(n, w) for w in weights.as_tuple())
    rows = [idx]
    cols = [idx]
    vals = [wc]
    b = np.zeros(n)
    for weight, dr, dc in ((wn, -1, 0), (ws, 1, 0), (ww, 0, -1), (we, 0, 1)):
        nr, nc_ = r + dr, c + dc
        inside = (nr >= 0) & (nr < nrows) & (nc_ >= 0) & (nc_ < ncols)
        rows.append(idx[inside])
        cols.append((nr * ncols + nc_)[inside])
        vals.append(weight[inside])
        out = ~inside
        if out.any():
            b[idx[out]] += weight[out] * bc.evaluate(nr[out], nc_[out])
    return (
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
        b,
    )


def jacobi_operator(problem: JacobiProblem, nranks: int) -> tuple[MatAIJ, Vec]:
    """(A, b) such that one Jacobi sweep of ``problem`` is x' = A x + b."""
    nrows, ncols = problem.shape
    layout = natural_layout(nrows, ncols, nranks)
    rows, cols, vals, b = stencil_coo(nrows, ncols, problem.weights, problem.bc)
    mat = MatAIJ.from_coo(layout, layout, rows, cols, vals)
    return mat, Vec.from_global(layout, b)


def ghost_indices(layout: VecLayout, rank: int, ncols: int) -> np.ndarray:
    """Exact global indices rank needs but does not own for one 5-point
    sweep under natural ordering: the north/south windows one grid row
    away plus the +-1 stragglers at the range ends.  Matches the
    assembled matrix's ``garray`` and is available without assembling
    anything, which is what the timing-only graphs use."""
    r0, r1 = layout.range_of(rank)
    mine = np.arange(r0, r1, dtype=np.int64)
    pieces = []
    north = mine - ncols
    pieces.append(north[north >= 0])
    south = mine + ncols
    pieces.append(south[south < layout.n])
    west = mine[mine % ncols != 0] - 1
    pieces.append(west)
    east = mine[mine % ncols != ncols - 1] + 1
    pieces.append(east)
    neighbours = np.unique(np.concatenate(pieces))
    return neighbours[(neighbours < r0) | (neighbours >= r1)]


def ghost_window_groups(layout: VecLayout, rank: int, ncols: int) -> dict[int, int]:
    """Analytic ghost census for the timing-only graphs: how many
    entries ``rank`` pulls from each owner rank, without materialising
    index arrays (paper-sized layouts have millions of rows per rank).

    Uses the window approximation ``[r0 - ncols, r0) u [r1, r1 +
    ncols)``, which equals :func:`ghost_indices` exactly whenever every
    rank owns at least one full grid row (always true in the paper's
    configurations).
    """
    r0, r1 = layout.range_of(rank)
    windows = (
        (max(0, r0 - ncols), r0),
        (r1, min(layout.n, r1 + ncols)),
    )
    groups: dict[int, int] = {}
    ranges = layout.ranges
    for a, b in windows:
        if a >= b:
            continue
        src = layout.owner(a)
        while a < b:
            hi = min(b, ranges[src + 1])
            groups[src] = groups.get(src, 0) + (hi - a)
            a = hi
            src += 1
    return groups
