"""VecScatter: gather remote vector entries into per-rank ghost buffers.

PETSc's MatMult on an MPIAIJ matrix starts a VecScatter for the
off-diagonal columns, multiplies the diagonal block while messages are
in flight, then finishes the scatter and applies the off-diagonal
block.  The :class:`ScatterPlan` here is the static part: which global
indices each rank needs, grouped by owning rank, with the message
census the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vec import Vec, VecLayout


@dataclass(frozen=True)
class ScatterPlan:
    """A gather of ``needed[r]`` (sorted global indices) into rank r's
    ghost buffer."""

    layout: VecLayout
    #: per destination rank: sorted unique global indices it needs
    needed: tuple[np.ndarray, ...]
    #: per (src, dst): the global indices src sends dst
    messages: dict = field(default_factory=dict)

    @classmethod
    def build(cls, layout: VecLayout, needed_per_rank: list[np.ndarray]) -> "ScatterPlan":
        if len(needed_per_rank) != layout.nranks:
            raise ValueError("need one index list per rank")
        needed = []
        messages: dict[tuple[int, int], np.ndarray] = {}
        for dst, raw in enumerate(needed_per_rank):
            idx = np.unique(np.asarray(raw, dtype=np.int64))
            lo, hi = layout.range_of(dst)
            if idx.size and ((idx >= lo) & (idx < hi)).any():
                raise ValueError(
                    f"rank {dst} asked to scatter indices it already owns"
                )
            needed.append(idx)
            if idx.size:
                owners = layout.owners(idx)
                for src in np.unique(owners):
                    messages[(int(src), dst)] = idx[owners == src]
        return cls(layout=layout, needed=tuple(needed), messages=messages)

    # -- execution ---------------------------------------------------------

    def gather(self, vec: Vec, rank: int) -> np.ndarray:
        """Ghost values for ``rank`` (simulating completed messages)."""
        if vec.layout != self.layout:
            raise ValueError("vector layout differs from the scatter plan")
        idx = self.needed[rank]
        out = np.empty(idx.size)
        for (src, dst), send_idx in self.messages.items():
            if dst != rank:
                continue
            lo, _ = self.layout.range_of(src)
            values = vec.local(src)[send_idx - lo]
            pos = np.searchsorted(idx, send_idx)
            out[pos] = values
        return out

    def ghost_position(self, rank: int, global_indices: np.ndarray) -> np.ndarray:
        """Positions of ``global_indices`` inside rank's ghost buffer."""
        wanted = np.asarray(global_indices, dtype=np.int64)
        idx = self.needed[rank]
        pos = np.searchsorted(idx, wanted)
        bad = (pos >= idx.size) | (idx[np.minimum(pos, max(idx.size - 1, 0))] != wanted)
        if bad.any():
            raise KeyError(
                f"indices not in rank {rank}'s ghost set: {wanted[bad][:5].tolist()}"
            )
        return pos

    # -- accounting -----------------------------------------------------------

    def message_census(self, ranks_per_node: int = 1) -> dict[str, int]:
        """Counts of messages/bytes, split intra- vs inter-node when
        ranks are packed ``ranks_per_node`` per node (PETSc's
        one-rank-per-core layout)."""
        stats = {"messages": 0, "bytes": 0, "remote_messages": 0, "remote_bytes": 0}
        for (src, dst), idx in self.messages.items():
            nbytes = int(idx.size) * 8
            stats["messages"] += 1
            stats["bytes"] += nbytes
            if src // ranks_per_node != dst // ranks_per_node:
                stats["remote_messages"] += 1
                stats["remote_bytes"] += nbytes
        return stats
