"""Multigrid cycles: V, W and full multigrid (FMG) for the Poisson
problem, plus the solver driver.

The textbook structure (Trottenberg et al., the paper's reference
[3]): pre-smooth, restrict the residual, solve the coarse error
equation recursively (once for a V-cycle, twice for W), prolong and
correct, post-smooth.  Error equations on coarse levels carry zero
Dirichlet data, so their frames are zero.

The solver's figure of merit -- and the classic multigrid invariant
the tests pin down -- is the *grid-independent* convergence factor:
each V(2,1)-cycle shrinks the residual by roughly 10x regardless of
problem size, while plain Jacobi degrades as O(1/n^2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distgrid.boundary import DirichletBC
from .poisson import (
    direct_coarsest,
    frame_solution,
    jacobi_smooth,
    residual,
)
from .transfer import prolong_bilinear, restrict_full_weighting

#: Grids at or below this many points per side are solved directly.
COARSEST = 3


def cycle(
    framed_u: np.ndarray,
    f: np.ndarray,
    h: float,
    pre: int = 2,
    post: int = 1,
    omega: float = 0.8,
    gamma: int = 1,
) -> np.ndarray:
    """One multigrid cycle (gamma=1: V, gamma=2: W) on the framed
    iterate; returns the improved framed iterate."""
    nr = f.shape[0]
    if nr <= COARSEST or min(f.shape) <= COARSEST or f.shape[0] % 2 == 0 or f.shape[1] % 2 == 0:
        exact = framed_u.copy()
        # Fold the Dirichlet frame into an equivalent zero-frame system
        # by solving for the correction.
        r = residual(framed_u, f, h)
        e = direct_coarsest(r, h)
        exact[1:-1, 1:-1] += e
        return exact

    u = jacobi_smooth(framed_u, f, h, sweeps=pre, omega=omega)
    r = residual(u, f, h)
    rc = restrict_full_weighting(r)
    # Coarse error equation: A_2h e = r_2h with zero boundary.
    ec_framed = np.zeros((rc.shape[0] + 2, rc.shape[1] + 2))
    for _ in range(gamma):
        ec_framed = cycle(ec_framed, rc, 2.0 * h, pre, post, omega, gamma)
    e = prolong_bilinear(ec_framed[1:-1, 1:-1], r.shape)
    u[1:-1, 1:-1] += e
    return jacobi_smooth(u, f, h, sweeps=post, omega=omega)


@dataclass
class MGResult:
    """Outcome of a multigrid solve."""

    u: np.ndarray  # interior solution
    converged: bool
    cycles: int
    residual_norms: list[float] = field(default_factory=list)

    @property
    def convergence_factor(self) -> float:
        """Geometric-mean residual reduction per cycle."""
        r = self.residual_norms
        if len(r) < 2 or r[0] == 0:
            return 0.0
        return float((r[-1] / r[0]) ** (1.0 / (len(r) - 1)))


def solve(
    f: np.ndarray,
    bc: DirichletBC | None = None,
    h: float | None = None,
    rtol: float = 1e-8,
    max_cycles: int = 50,
    pre: int = 2,
    post: int = 1,
    omega: float = 0.8,
    gamma: int = 1,
    u0: np.ndarray | None = None,
) -> MGResult:
    """Solve -Laplace(u) = f to ``rtol`` with repeated cycles.

    ``f`` is the interior right-hand side (odd extents for full
    coarsening); ``h`` defaults to 1/(n+1) on the unit square.
    """
    bc = bc or DirichletBC(0.0)
    nr, nc = f.shape
    h = h if h is not None else 1.0 / (nr + 1)
    framed = frame_solution(u0 if u0 is not None else np.zeros(f.shape), bc)
    r0 = float(np.linalg.norm(residual(framed, f, h)))
    result = MGResult(u=framed[1:-1, 1:-1], converged=r0 == 0.0, cycles=0)
    result.residual_norms.append(r0)
    if r0 == 0.0:
        return result
    for k in range(1, max_cycles + 1):
        framed = cycle(framed, f, h, pre=pre, post=post, omega=omega, gamma=gamma)
        rnorm = float(np.linalg.norm(residual(framed, f, h)))
        result.residual_norms.append(rnorm)
        if rnorm <= rtol * r0:
            result.u = framed[1:-1, 1:-1].copy()
            result.converged = True
            result.cycles = k
            return result
    result.u = framed[1:-1, 1:-1].copy()
    result.cycles = max_cycles
    return result


def fmg(
    f: np.ndarray,
    bc: DirichletBC | None = None,
    h: float | None = None,
    pre: int = 2,
    post: int = 1,
    omega: float = 0.8,
    cycles_per_level: int = 1,
) -> np.ndarray:
    """Full multigrid: solve coarse first, interpolate up, one V-cycle
    per level -- O(N) work to discretisation accuracy.  Returns the
    interior solution (zero-boundary form: FMG transfers solutions, so
    nonzero Dirichlet data should be lifted by the caller; `solve`
    handles general BCs)."""
    bc = bc or DirichletBC(0.0)
    nr, nc = f.shape
    h = h if h is not None else 1.0 / (nr + 1)
    if nr <= COARSEST or min(nr, nc) <= COARSEST or nr % 2 == 0 or nc % 2 == 0:
        return direct_coarsest(f, h)
    fc = restrict_full_weighting(f)
    uc = fmg(fc, bc, 2.0 * h, pre, post, omega, cycles_per_level)
    framed = frame_solution(prolong_bilinear(uc, f.shape), bc)
    for _ in range(cycles_per_level):
        framed = cycle(framed, f, h, pre=pre, post=post, omega=omega)
    return framed[1:-1, 1:-1].copy()
