"""Geometric multigrid on the stencil substrate (the intro's canonical
stencil consumer): transfers, smoothers, V/W/FMG cycles."""

from .cycle import MGResult, cycle, fmg, solve
from .poisson import (
    A_WEIGHTS,
    apply_operator,
    direct_coarsest,
    frame_solution,
    jacobi_smooth,
    residual,
)
from .transfer import (
    coarse_shape,
    levels_for,
    prolong_bilinear,
    restrict_full_weighting,
    restrict_injection,
)

__all__ = [
    "A_WEIGHTS",
    "MGResult",
    "apply_operator",
    "coarse_shape",
    "cycle",
    "direct_coarsest",
    "fmg",
    "frame_solution",
    "jacobi_smooth",
    "levels_for",
    "prolong_bilinear",
    "residual",
    "restrict_full_weighting",
    "restrict_injection",
    "solve",
]
