"""The discrete Poisson operator used by the multigrid solver.

Vertex-centred 5-point discretisation of  -Laplace(u) = f  on the unit
square with Dirichlet boundary g:

    (4 u[i,j] - u[i-1,j] - u[i+1,j] - u[i,j-1] - u[i,j+1]) / h^2 = f[i,j]

All operator applications run through the same vectorised stencil
kernel the paper's implementations use (weights (4, -1, -1, -1, -1)
scaled by 1/h^2), so multigrid here is literally a consumer of the
reproduction's substrate.
"""

from __future__ import annotations

import numpy as np

from ..distgrid.boundary import DirichletBC
from ..stencil.kernels import StencilWeights, jacobi_update_region

#: The negative-Laplacian stencil (before the 1/h^2 scale).
A_WEIGHTS = StencilWeights(center=4.0, north=-1.0, south=-1.0, west=-1.0, east=-1.0)


def frame_solution(u: np.ndarray, bc: DirichletBC) -> np.ndarray:
    """Wrap an interior solution in its Dirichlet frame."""
    nr, nc = u.shape
    framed = bc.frame(nr, nc, depth=1)
    framed[1:-1, 1:-1] = u
    return framed


def apply_operator(framed_u: np.ndarray, h: float) -> np.ndarray:
    """A u on the interior, reading boundary values from the frame."""
    nr, nc = framed_u.shape[0] - 2, framed_u.shape[1] - 2
    rows, cols = slice(1, nr + 1), slice(1, nc + 1)
    return jacobi_update_region(framed_u, A_WEIGHTS, rows, cols) / (h * h)


def residual(framed_u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """r = f - A u on the interior."""
    return f - apply_operator(framed_u, h)


def jacobi_smooth(
    framed_u: np.ndarray, f: np.ndarray, h: float, sweeps: int, omega: float = 0.8
) -> np.ndarray:
    """``sweeps`` damped-Jacobi smoothings, returning a new framed
    array: u <- u + omega (h^2/4) (f - A u).  The frame is preserved
    (Dirichlet data never changes)."""
    if sweeps < 0:
        raise ValueError("sweep count cannot be negative")
    out = framed_u.copy()
    scale = omega * h * h / 4.0
    for _ in range(sweeps):
        out[1:-1, 1:-1] += scale * residual(out, f, h)
    return out


def direct_coarsest(f: np.ndarray, h: float) -> np.ndarray:
    """Exact solve on a tiny coarsest grid (dense assembly)."""
    nr, nc = f.shape
    n = nr * nc
    A = np.zeros((n, n))
    idx = lambda i, j: i * nc + j  # noqa: E731 - local helper
    for i in range(nr):
        for j in range(nc):
            k = idx(i, j)
            A[k, k] = 4.0
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < nr and 0 <= nj < nc:
                    A[k, idx(ni, nj)] = -1.0
    u = np.linalg.solve(A / (h * h), f.ravel())
    return u.reshape(nr, nc)
