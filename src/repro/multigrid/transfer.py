"""Inter-grid transfer operators for geometric multigrid.

The paper's introduction places the stencil kernel inside "canonical
algorithms ... employing geometric multigrid"; this package builds
that consumer on the same substrate.  Transfers use the classical
vertex-centred pair: full-weighting restriction (the 1/16 [1 2 1; 2 4
2; 1 2 1] stencil) and bilinear prolongation, which are adjoint up to
the standard factor of 4 in 2D -- a property the tests verify, since
it is what keeps the V-cycle a contraction.

Grids at level k have ``2^k - 1`` interior points per side, so coarse
points sit exactly on every other fine point.
"""

from __future__ import annotations

import numpy as np


def coarse_shape(fine_shape: tuple[int, int]) -> tuple[int, int]:
    """Shape of the next-coarser vertex-centred grid."""
    nr, nc = fine_shape
    if nr < 3 or nc < 3 or nr % 2 == 0 or nc % 2 == 0:
        raise ValueError(
            f"vertex-centred coarsening needs odd extents >= 3, got {fine_shape}"
        )
    return ((nr - 1) // 2, (nc - 1) // 2)


def levels_for(n: int) -> int:
    """Number of multigrid levels available for an n x n grid (down to
    a 1x1 or 3x3 coarsest grid)."""
    levels = 1
    while n >= 3 and n % 2 == 1:
        n = (n - 1) // 2
        levels += 1
    return levels - 1 if n != 1 else levels


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction: each coarse point averages its fine
    counterpart (weight 1/4), edge neighbours (1/8) and corner
    neighbours (1/16).  Fully vectorised on interior views."""
    cr, cc = coarse_shape(fine.shape)
    # Coarse point (I, J) sits on fine point (2I+1, 2J+1).
    center = fine[1::2, 1::2][:cr, :cc]
    north = fine[0:-1:2, 1::2][:cr, :cc]
    south = fine[2::2, 1::2][:cr, :cc]
    west = fine[1::2, 0:-1:2][:cr, :cc]
    east = fine[1::2, 2::2][:cr, :cc]
    nw = fine[0:-1:2, 0:-1:2][:cr, :cc]
    ne = fine[0:-1:2, 2::2][:cr, :cc]
    sw = fine[2::2, 0:-1:2][:cr, :cc]
    se = fine[2::2, 2::2][:cr, :cc]
    return (
        4.0 * center + 2.0 * (north + south + west + east) + (nw + ne + sw + se)
    ) / 16.0


def restrict_injection(fine: np.ndarray) -> np.ndarray:
    """Plain injection (coarse = co-located fine values); cheaper but
    not variationally matched -- provided for comparison/ablation."""
    cr, cc = coarse_shape(fine.shape)
    return fine[1::2, 1::2][:cr, :cc].copy()


def prolong_bilinear(coarse: np.ndarray, fine_shape: tuple[int, int]) -> np.ndarray:
    """Bilinear interpolation back to the fine grid (zero Dirichlet
    boundary implied beyond the interior, which is correct for the
    error/correction quantities multigrid transfers)."""
    if coarse_shape(fine_shape) != coarse.shape:
        raise ValueError(
            f"coarse shape {coarse.shape} does not refine to {fine_shape}"
        )
    nr, nc = fine_shape
    # Pad with the zero boundary so every fine point has four coarse
    # frame neighbours.
    padded = np.zeros((coarse.shape[0] + 2, coarse.shape[1] + 2))
    padded[1:-1, 1:-1] = coarse
    fine = np.zeros(fine_shape)
    # Co-located points.
    fine[1::2, 1::2] = coarse
    # Vertically between two coarse points (even rows, odd cols).
    fine[0::2, 1::2] = 0.5 * (padded[:-1, 1:-1] + padded[1:, 1:-1])
    # Horizontally between (odd rows, even cols).
    fine[1::2, 0::2] = 0.5 * (padded[1:-1, :-1] + padded[1:-1, 1:])
    # Cell centres (even rows, even cols): average of four.
    fine[0::2, 0::2] = 0.25 * (
        padded[:-1, :-1] + padded[:-1, 1:] + padded[1:, :-1] + padded[1:, 1:]
    )
    return fine
