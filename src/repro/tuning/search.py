"""Successive-halving refinement of the model's shortlist.

The tuner spends a fixed *budget* of actual runs:

1. the model (:mod:`repro.tuning.model`) ranks every valid candidate
   for free and a shortlist is formed -- mostly the model's favourites
   plus a seeded sample of the rest, so a miscalibrated model cannot
   hide the true optimum forever;
2. a **wide pass** evaluates the shortlist with the discrete-event
   simulator at reduced fidelity (fewer iterations), halving the pool
   at each rung while doubling fidelity -- the classic successive
   halving schedule;
3. an optional **narrow pass** re-measures the finalists on a real
   backend (``threads`` / ``processes``) through the same
   ``run()``/``Sweep`` plumbing, with a per-candidate timeout and
   failure containment so one bad configuration cannot kill the
   session.

Winners are persisted through :mod:`repro.tuning.cache`; a warm cache
answers without any runs at all.
"""

from __future__ import annotations

import math
import random
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

from ..exec import backends
from ..experiments.sweeper import Sweep, to_csv
from ..machine.machine import MachineSpec, nacl
from ..stencil.problem import JacobiProblem
from . import model
from .cache import TuningCache, cache_key
from .space import Candidate, SearchSpace

#: How the winner was decided.
SOURCES = ("cache", "search", "model")


@dataclass(frozen=True)
class Trial:
    """One budgeted evaluation of one candidate."""

    candidate: Candidate
    backend: str
    fidelity: int  # iterations actually run
    gflops: float | None
    elapsed: float | None
    status: str  # "ok" | "error" | "timeout"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_record(self) -> dict:
        return {
            "tile": self.candidate.tile,
            "steps": self.candidate.steps,
            "policy": self.candidate.policy,
            "overlap": self.candidate.overlap,
            "boundary_priority": self.candidate.boundary_priority,
            "passes": self.candidate.passes or None,
            "backend": self.backend,
            "fidelity": self.fidelity,
            "gflops": self.gflops,
            "elapsed_s": self.elapsed,
            "status": self.status,
            "detail": self.detail or None,
        }


@dataclass
class TuningResult:
    """Outcome of one :func:`tune` call."""

    impl: str
    backend: str
    machine: MachineSpec
    problem: JacobiProblem
    budget: int
    seed: int
    winner: Candidate
    winner_gflops: float
    source: str  # one of SOURCES
    predictions: list[model.Prediction] = field(default_factory=list)
    trials: list[Trial] = field(default_factory=list)
    rungs: list[tuple[int, int]] = field(default_factory=list)  # (fidelity, evals)
    cache_entry: dict | None = None

    @property
    def runs_used(self) -> int:
        """Budget actually spent (every trial, successful or not)."""
        return len(self.trials)

    @property
    def measured_runs(self) -> int:
        """Trials that executed on a real (non-sim) backend."""
        return sum(1 for t in self.trials if t.backend != "sim")

    def records(self) -> list[dict]:
        """Flat per-trial records, model predictions attached -- the
        same shape :meth:`Sweep.run` returns, so both share one export
        path."""
        predicted = {p.candidate: p.gflops for p in self.predictions}
        out = []
        for trial in self.trials:
            rec = trial.as_record()
            rec["predicted_gflops"] = predicted.get(trial.candidate)
            rec["impl"] = self.impl
            rec["machine"] = self.machine.name
            rec["nodes"] = self.machine.nodes
            out.append(rec)
        return out

    def to_csv(self, path: str | None = None) -> str:
        return to_csv(self.records(), path)


def _fidelity_ladder(full: int) -> list[int]:
    """Reduced iteration counts, quartered-then-doubling up to full."""
    full = max(1, full)
    ladder = [full]
    fid = full
    while fid > max(1, full // 4):
        fid = max(1, full // 4) if fid // 2 < max(1, full // 4) else fid // 2
        ladder.append(fid)
    return sorted(set(ladder))


def _evaluate(
    problem: JacobiProblem,
    impl: str,
    machine: MachineSpec,
    candidate: Candidate,
    fidelity: int,
    backend: str,
    timeout: float | None,
    jobs: int | None,
    run_kwargs: dict | None,
) -> Trial:
    """Run one candidate with full failure containment.

    Reuses the :class:`~repro.experiments.sweeper.Sweep` plumbing for
    the actual call so tuning records and sweep records are the same
    animal.  Exceptions become ``status="error"`` trials; a measured
    run exceeding ``timeout`` seconds becomes ``status="timeout"``
    (the stray worker thread is abandoned -- the simulator is never
    run under a timeout because it is deterministic and cheap).
    """
    sweep = Sweep(problem=replace(problem, iterations=fidelity))
    config = dict(run_kwargs or {})
    config.update(candidate.run_kwargs(impl))
    config["impl"] = impl
    common: dict[str, Any] = {"mode": "simulate", "backend": backend}
    if backend in backends.MEASURED_BACKENDS and jobs is not None:
        common["jobs"] = jobs

    def work() -> dict:
        return sweep.run_configs([config], machine=machine, **common)[0]

    try:
        if timeout is None or backend == "sim":
            record = work()
        else:
            pool = ThreadPoolExecutor(max_workers=1)
            try:
                record = pool.submit(work).result(timeout)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
    except FutureTimeout:
        return Trial(candidate, backend, fidelity, None, None, "timeout",
                     f"exceeded {timeout:.3g}s")
    except Exception as exc:  # noqa: BLE001 - containment is the point
        return Trial(candidate, backend, fidelity, None, None, "error",
                     f"{type(exc).__name__}: {exc}")
    return Trial(candidate, backend, fidelity, float(record["gflops"]),
                 float(record["elapsed_s"]), "ok")


def _shortlist(
    predictions: list[model.Prediction], budget: int, seed: int
) -> list[Candidate]:
    """Mostly the model's favourites, plus a seeded exploration sample
    from the rest of the ranking (the model is a guide, not an
    oracle)."""
    pool_size = max(2, min(len(predictions), budget // 2 or 1))
    n_top = max(1, math.ceil(pool_size * 2 / 3))
    top = [p.candidate for p in predictions[:n_top]]
    rest = [p.candidate for p in predictions[n_top:]]
    n_explore = min(len(rest), pool_size - len(top))
    explore = random.Random(seed).sample(rest, n_explore) if n_explore else []
    return top + sorted(explore)


def tune(
    problem: JacobiProblem,
    impl: str = "ca-parsec",
    machine: MachineSpec | None = None,
    backend: str = "sim",
    budget: int = 24,
    space: SearchSpace | None = None,
    cache: TuningCache | str | Path | bool | None = None,
    seed: int = 0,
    timeout: float | None = None,
    jobs: int | None = None,
    force: bool = False,
    run_kwargs: dict | None = None,
    metrics=None,
) -> TuningResult:
    """Find the best (tile, steps, policy, ...) within ``budget`` runs.

    ``backend`` selects what refines the shortlist: ``"sim"`` keeps
    everything in the discrete-event model (fast, deterministic);
    ``"threads"``/``"processes"`` re-measure the finalists on this
    host.  ``cache`` is a :class:`TuningCache`, a path, ``None`` for
    the default store or ``False`` to disable persistence; a warm
    cache returns immediately with zero runs unless ``force`` is set.
    ``run_kwargs`` (e.g. ``{"ratio": 0.2}``) are forwarded to every
    evaluation and folded into the cache key.  ``metrics`` accepts a
    :class:`repro.obs.MetricRegistry`; the tuner then counts cache
    hits/misses and every budgeted trial by backend and status.
    """
    machine = machine or nacl(4)
    if impl not in ("base-parsec", "ca-parsec"):
        raise ValueError(
            "autotuning applies to the PaRSEC implementations "
            f"('base-parsec', 'ca-parsec'), not {impl!r}"
        )
    if backend not in backends.BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choices: {backends.BACKENDS}"
        )
    if budget < 0:
        raise ValueError(f"tuning budget cannot be negative, got {budget}")

    store: TuningCache | None
    if cache is False:
        store = None
    elif isinstance(cache, TuningCache):
        store = cache
    else:
        store = TuningCache(cache if cache is not None else None)
    extra = ",".join(f"{k}={v}" for k, v in sorted((run_kwargs or {}).items()))

    if store is not None and not force:
        entry = store.get(machine, problem, backend, impl, extra)
        if metrics is not None:
            name = ("tuning_cache_hits_total" if entry is not None
                    else "tuning_cache_misses_total")
            metrics.counter(
                name, help="tuning-cache lookups by outcome"
            ).inc()
        if entry is not None:
            return TuningResult(
                impl=impl, backend=backend, machine=machine, problem=problem,
                budget=budget, seed=seed,
                winner=store.candidate_of(entry),
                winner_gflops=float(entry.get("gflops", 0.0)),
                source="cache", cache_entry=entry,
            )

    space = space or SearchSpace.for_problem(problem, machine, impl)
    candidates = space.candidates(problem, machine, impl)
    if not candidates:
        pruned = space.pruned(problem, machine, impl)
        detail = f"; e.g. {pruned[0][1]}" if pruned else ""
        raise ValueError(
            "the search space is empty after constraint pruning" + detail
        )
    # The model ranks with the same kernel-adjustment ratio the runs
    # will use: shrinking the kernel shifts the balance toward
    # communication, which is exactly when larger CA steps pay off.
    ratio = float((run_kwargs or {}).get("ratio", 1.0))
    predictions = model.rank(problem, machine, impl, candidates, ratio=ratio)

    if budget == 0 or not backends.backend_available(backend):
        return TuningResult(
            impl=impl, backend=backend, machine=machine, problem=problem,
            budget=budget, seed=seed,
            winner=predictions[0].candidate,
            winner_gflops=predictions[0].gflops,
            source="model", predictions=predictions,
        )

    model_rank = {p.candidate: i for i, p in enumerate(predictions)}
    trials: list[Trial] = []
    rungs: list[tuple[int, int]] = []
    best_score: dict[Candidate, float] = {}
    measured = backend in backends.MEASURED_BACKENDS
    # Measured refinement reserves ~1/3 of the budget for the finalists.
    screen_budget = budget * 2 // 3 if measured else budget
    budget_left = budget

    seen: dict[tuple[Candidate, int, str], Trial] = {}

    def spend(cands: Sequence[Candidate], fid: int, bend: str,
              limit: int) -> list[tuple[float, Candidate]]:
        nonlocal budget_left
        scored = []
        used = 0
        for cand in cands:
            # The simulator is deterministic, so a repeat of an
            # already-run (candidate, fidelity) costs no budget;
            # measured backends are noisy and always re-run.
            trial = seen.get((cand, fid, bend)) if bend == "sim" else None
            if trial is None:
                if budget_left <= 0 or used >= limit:
                    break
                trial = _evaluate(problem, impl, machine, cand, fid, bend,
                                  timeout, jobs, run_kwargs)
                seen[(cand, fid, bend)] = trial
                trials.append(trial)
                budget_left -= 1
                used += 1
                if metrics is not None:
                    metrics.counter(
                        "tuning_trials_total",
                        help="budgeted tuning evaluations by backend/status",
                    ).inc(backend=bend, status=trial.status)
            if trial.ok:
                best_score[cand] = trial.gflops
                scored.append((trial.gflops, cand))
        if used:
            rungs.append((fid, used))
        scored.sort(key=lambda gc: (-gc[0], model_rank.get(gc[1], 0), gc[1]))
        return scored

    pool = _shortlist(predictions, screen_budget, seed)
    ladder = _fidelity_ladder(problem.iterations)
    if impl == "ca-parsec":
        # Running fewer than s iterations truncates the CA step to the
        # iteration count, which makes different step sizes
        # indistinguishable; keep every rung deep enough to tell the
        # pool's candidates apart.
        min_fid = min(ladder[-1], max(c.steps for c in pool))
        ladder = sorted({max(f, min_fid) for f in ladder})
    full = ladder[-1]
    fid_idx = 0 if len(pool) > 1 else len(ladder) - 1
    while True:
        fid = ladder[fid_idx]
        scored = spend(pool, fid, "sim", limit=len(pool))
        survivors = [c for _, c in scored] or pool
        at_full = fid >= full
        if budget_left <= 0 or (at_full and len(survivors) <= 1):
            pool = survivors[:1] or pool[:1]
            break
        if at_full:
            pool = survivors[: max(1, len(survivors) // 2)]
            if len(pool) == 1:
                break
        else:
            pool = survivors[: max(1, math.ceil(len(survivors) / 2))]
            fid_idx = min(fid_idx + 1, len(ladder) - 1)

    winner = pool[0]
    winner_gflops = best_score.get(winner, predictions[0].gflops)

    if measured and budget_left > 0:
        # Narrow pass: the sim-ranked finalists, re-measured for real.
        ranked = sorted(
            (c for c in best_score),
            key=lambda c: (-best_score[c], model_rank.get(c, 0), c),
        ) or [winner]
        finalists = ranked[: max(2, budget_left)]
        scored = spend(finalists, full, backend, limit=budget_left)
        if scored:
            winner_gflops, winner = scored[0]

    result = TuningResult(
        impl=impl, backend=backend, machine=machine, problem=problem,
        budget=budget, seed=seed, winner=winner,
        winner_gflops=winner_gflops, source="search",
        predictions=predictions, trials=trials, rungs=rungs,
    )
    if store is not None:
        result.cache_entry = store.put(
            machine, problem, backend, impl, winner, extra,
            gflops=winner_gflops, runs_used=result.runs_used, budget=budget,
            seed=seed,
        )
    return result


def resolve_auto(
    problem: JacobiProblem,
    impl: str,
    machine: MachineSpec,
    tile: int | str | None = "auto",
    steps: int | str = "auto",
    backend: str = "sim",
    budget: int = 0,
    cache: TuningCache | str | Path | bool | None = None,
    seed: int = 0,
    timeout: float | None = None,
    jobs: int | None = None,
    metrics=None,
) -> tuple[int, int, dict]:
    """Turn ``tile="auto"`` / ``steps="auto"`` into concrete values.

    Resolution order: cached winner (zero runs), then a budgeted
    search, then -- when the budget is 0 or the requested refinement
    backend is unavailable on this host -- a model-only pick with a
    ``UserWarning`` naming the reason.  Returns ``(tile, steps,
    info)`` where ``info`` records the source and any tuning result.
    """
    fixed_tile = tile if isinstance(tile, int) else None
    # Only the CA implementation has a step knob; a fixed steps value
    # (e.g. the runner's default 15) is meaningless for the others and
    # must not constrain the space.
    fixed_steps = steps if isinstance(steps, int) and impl == "ca-parsec" else None
    store: TuningCache | None
    if cache is False:
        store = None
    elif isinstance(cache, TuningCache):
        store = cache
    else:
        store = TuningCache(cache if cache is not None else None)

    if store is not None:
        entry = store.get(machine, problem, backend, impl)
        if metrics is not None:
            name = ("tuning_cache_hits_total" if entry is not None
                    else "tuning_cache_misses_total")
            metrics.counter(
                name, help="tuning-cache lookups by outcome"
            ).inc()
        if entry is not None:
            cand = store.candidate_of(entry)
            if (fixed_tile in (None, cand.tile)
                    and (fixed_steps in (None, cand.steps))):
                return cand.tile, cand.steps, {
                    "source": "cache", "entry": entry,
                    "key": cache_key(machine, problem, backend, impl),
                }

    space = SearchSpace.for_problem(problem, machine, impl).narrowed(
        tile=fixed_tile, steps=fixed_steps
    )
    available = backends.backend_available(backend)
    if budget > 0 and available:
        # A pinned axis changes what "best" means, so constrained
        # searches neither consult nor overwrite the unconstrained
        # cache entry for this key.
        pinned = fixed_tile is not None or fixed_steps is not None
        result = tune(
            problem, impl=impl, machine=machine, backend=backend,
            budget=budget, space=space,
            cache=False if (pinned or store is None) else store,
            seed=seed, timeout=timeout, jobs=jobs, metrics=metrics,
        )
        return result.winner.tile, result.winner.steps, {
            "source": result.source, "result": result,
        }

    reason = (
        f"the tuning budget is {budget}" if budget <= 0
        else f"backend {backend!r} is unavailable on this host"
    )
    warnings.warn(
        f"autotuning fell back to the model-only pick because {reason}; "
        "run `python -m repro.cli tune` or pass tune=True to search for "
        "(and cache) a measured optimum",
        UserWarning,
        stacklevel=3,
    )
    candidates = space.candidates(problem, machine, impl)
    if not candidates:
        raise ValueError("the search space is empty after constraint pruning")
    top = model.rank(problem, machine, impl, candidates)[0]
    return top.candidate.tile, top.candidate.steps, {
        "source": "model", "prediction": top,
    }
