"""The autotuner's search space: what configurations are even legal.

The paper picks its operating points by hand -- a single-node tile
sweep (Fig. 6) and a step-size study (Fig. 9).  This module makes that
space a first-class object: a :class:`Candidate` is one complete
runner configuration (tile, CA step, scheduling policy, comm overlap,
boundary priority), and a :class:`SearchSpace` enumerates candidates
*after* pruning everything the decomposition forbids, so invalid
combinations are never handed to the runner at all:

* the tile must fit inside (and, by default, exactly divide) every
  node block the two-level decomposition produces -- ragged tiles make
  Fig. 6 numbers incomparable across the sweep;
* the CA step ``s`` must fit the tile (``s``-deep PA1 strips must come
  from a single tile, the same constraint ``core/spec.py`` enforces);
* the scheduling policy must be one the schedulers know.

``SearchSpace.for_problem`` derives a default space from the problem
and machine alone: divisors of the node-block extents, geometrically
thinned, crossed with the paper's step-size ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import product
from typing import Iterator

from ..distgrid.partition import ProcessGrid, even_split
from ..machine.machine import MachineSpec
from ..runtime.scheduler import POLICIES
from ..stencil.problem import JacobiProblem

#: Step sizes the default space explores (Fig. 9's ladder plus the
#: base-equivalent s=1 and a few intermediate points).
DEFAULT_STEPS = (1, 2, 4, 5, 8, 10, 15, 20, 25, 40)

#: Ceiling on tasks per iteration a candidate may generate -- a budget
#: guard so the tuner never queues a simulation with millions of tasks.
DEFAULT_MAX_TASKS = 20_000


@dataclass(frozen=True, order=True)
class Candidate:
    """One complete tunable configuration of :func:`repro.core.runner.run`."""

    tile: int
    steps: int = 1
    policy: str = "priority"
    overlap: bool = True
    boundary_priority: bool = True
    #: IR rewrite pipeline spec ("" = no rewrite); see repro.ir.
    passes: str = ""

    def run_kwargs(self, impl: str) -> dict:
        """The runner keyword arguments this candidate selects."""
        kwargs = {
            "tile": self.tile,
            "policy": self.policy,
            "overlap": self.overlap,
            "boundary_priority": self.boundary_priority,
        }
        if impl == "ca-parsec":
            kwargs["steps"] = self.steps
        if self.passes:
            kwargs["passes"] = self.passes
        return kwargs

    def label(self) -> str:
        parts = [f"tile={self.tile}"]
        if self.steps != 1:
            parts.append(f"s={self.steps}")
        if self.policy != "priority":
            parts.append(self.policy)
        if not self.overlap:
            parts.append("no-overlap")
        if not self.boundary_priority:
            parts.append("no-bprio")
        if self.passes:
            parts.append(f"passes={self.passes}")
        return " ".join(parts)


def block_extents(
    problem: JacobiProblem, machine: MachineSpec, pgrid: ProcessGrid | None = None
) -> list[int]:
    """Distinct node-block edge lengths of the two-level decomposition."""
    pg = pgrid or ProcessGrid.square(machine.nodes)
    rows = even_split(problem.shape[0], pg.rows)
    cols = even_split(problem.shape[1], pg.cols)
    return sorted(set(rows) | set(cols))


def invalid_reason(
    candidate: Candidate,
    problem: JacobiProblem,
    machine: MachineSpec,
    impl: str,
    require_divisible: bool = True,
) -> str | None:
    """Why ``candidate`` must never run, or None if it is legal.

    Mirrors the constraints ``core/spec.py`` and the partition enforce,
    so pruning happens before any graph is built.
    """
    if candidate.tile < 1:
        return "tile size must be >= 1"
    extents = block_extents(problem, machine)
    if candidate.tile > extents[0]:
        return (
            f"tile {candidate.tile} exceeds the smallest node block "
            f"({extents[0]} cells)"
        )
    if require_divisible and any(b % candidate.tile for b in extents):
        return (
            f"tile {candidate.tile} does not divide the node blocks "
            f"{extents} (ragged tiles skew the sweep)"
        )
    if candidate.steps < 1:
        return "step size must be >= 1"
    if impl == "ca-parsec":
        if candidate.steps > candidate.tile:
            return (
                f"step size {candidate.steps} exceeds tile {candidate.tile}; "
                "the s-deep PA1 halo must come from a single tile"
            )
    elif candidate.steps != 1:
        return f"step size applies to ca-parsec only, not {impl}"
    if candidate.policy not in POLICIES:
        return (
            f"unknown policy {candidate.policy!r}; "
            f"choices: {tuple(sorted(POLICIES))}"
        )
    if candidate.passes:
        from ..ir import PassError, parse_pipeline

        try:
            passes = parse_pipeline(candidate.passes)
        except PassError as exc:
            return f"bad pass pipeline {candidate.passes!r}: {exc}"
        if any(p.name == "ca" for p in passes):
            # The steps axis already explores CA depth; a ca pass in
            # the pipeline would tune the same knob twice (and it needs
            # a steps=1 build, which the candidate may not be).
            return (
                "the 'ca' pass is not a tuning axis; CA depth is "
                "explored via the steps axis"
            )
    return None


def _divisors(value: int) -> list[int]:
    out = set()
    for d in range(1, math.isqrt(value) + 1):
        if value % d == 0:
            out.add(d)
            out.add(value // d)
    return sorted(out)


def _thin_geometric(values: list[int], count: int) -> tuple[int, ...]:
    """Keep at most ``count`` values, log-spaced across the range."""
    if len(values) <= count:
        return tuple(values)
    lo, hi = values[0], values[-1]
    picked: list[int] = []
    for i in range(count):
        target = lo * (hi / lo) ** (i / (count - 1))
        nearest = min(values, key=lambda v: (abs(math.log(v / target)), v))
        if nearest not in picked:
            picked.append(nearest)
    return tuple(sorted(picked))


@dataclass(frozen=True)
class SearchSpace:
    """Axes the tuner crosses, plus the validity flag for ragged grids.

    ``require_divisible`` is dropped automatically by
    :meth:`for_problem` when the grid's node blocks share no useful
    divisors (prime extents); tiles are then only required to fit.
    """

    tiles: tuple[int, ...]
    steps: tuple[int, ...] = (1,)
    policies: tuple[str, ...] = ("priority",)
    overlaps: tuple[bool, ...] = (True,)
    boundary_priorities: tuple[bool, ...] = (True,)
    #: IR pipeline specs to cross in ("" = no rewrite).
    pipelines: tuple[str, ...] = ("",)
    require_divisible: bool = True

    def __post_init__(self) -> None:
        if not self.tiles:
            raise ValueError("a search space needs at least one tile size")

    @property
    def size(self) -> int:
        return (
            len(self.tiles) * len(self.steps) * len(self.policies)
            * len(self.overlaps) * len(self.boundary_priorities)
            * len(self.pipelines)
        )

    def all_candidates(self) -> Iterator[Candidate]:
        """Every axis combination, valid or not, in sorted order."""
        combos = product(
            sorted(self.tiles), sorted(self.steps), sorted(self.policies),
            sorted(self.overlaps), sorted(self.boundary_priorities),
            sorted(self.pipelines),
        )
        for tile, steps, policy, overlap, bprio, passes in combos:
            yield Candidate(tile=tile, steps=steps, policy=policy,
                            overlap=overlap, boundary_priority=bprio,
                            passes=passes)

    def candidates(
        self, problem: JacobiProblem, machine: MachineSpec, impl: str
    ) -> list[Candidate]:
        """The legal candidates for this problem/machine/impl."""
        return [
            c for c in self.all_candidates()
            if invalid_reason(c, problem, machine, impl,
                              self.require_divisible) is None
        ]

    def pruned(
        self, problem: JacobiProblem, machine: MachineSpec, impl: str
    ) -> list[tuple[Candidate, str]]:
        """The rejected candidates with the constraint each violated."""
        out = []
        for c in self.all_candidates():
            reason = invalid_reason(c, problem, machine, impl,
                                    self.require_divisible)
            if reason is not None:
                out.append((c, reason))
        return out

    def narrowed(
        self, tile: int | None = None, steps: int | None = None
    ) -> "SearchSpace":
        """Pin axes the caller fixed by hand (``run(tile=288,
        steps="auto")``); a pinned tile drops the divisibility
        requirement -- the user's choice stands."""
        space = self
        if tile is not None:
            space = replace(space, tiles=(tile,), require_divisible=False)
        if steps is not None:
            space = replace(space, steps=(steps,))
        return space

    @classmethod
    def for_problem(
        cls,
        problem: JacobiProblem,
        machine: MachineSpec,
        impl: str = "ca-parsec",
        wide: bool = False,
        max_tiles: int = 12,
        max_tasks: int = DEFAULT_MAX_TASKS,
    ) -> "SearchSpace":
        """Derive the default space from the decomposition.

        Tile candidates are the common divisors of every node-block
        extent (so tiles always divide blocks), capped below by the
        task-count guard and thinned to ``max_tiles`` log-spaced
        values.  ``wide=True`` adds the scheduling axes (policy,
        overlap, boundary priority) on top of the geometric ones.
        """
        extents = block_extents(problem, machine)
        gcd = extents[0]
        for b in extents[1:]:
            gcd = math.gcd(gcd, b)
        nrows, ncols = problem.shape

        def task_count(tile: int) -> int:
            return math.ceil(nrows / tile) * math.ceil(ncols / tile)

        tiles = [d for d in _divisors(gcd)
                 if d >= 2 and task_count(d) <= max_tasks]
        require_divisible = True
        if len(tiles) < 2:
            # Ragged decomposition (prime-ish extents): fall back to a
            # geometric ladder of fitting (possibly non-dividing) tiles.
            require_divisible = False
            hi = extents[0]
            lo = max(2, next((t for t in range(2, hi + 1)
                              if task_count(t) <= max_tasks), hi))
            ladder = sorted({
                max(lo, min(hi, round(lo * (hi / lo) ** (i / (max_tiles - 1)))))
                for i in range(max_tiles)
            }) if hi > lo else [hi]
            tiles = ladder
        steps = (1,)
        if impl == "ca-parsec":
            # s > iterations degenerates to s = iterations; don't spend
            # budget on duplicates.
            cap = min(max(tiles), max(1, problem.iterations))
            steps = tuple(s for s in DEFAULT_STEPS if s <= cap) or (1,)
        policies = tuple(sorted(POLICIES)) if wide else ("priority",)
        overlaps = (False, True) if wide else (True,)
        bprios = (False, True) if wide else (True,)
        # The IR rewrite ladder: no rewrite, structural cleanup, and
        # two coarsening granularities (the 'ca' pass is excluded by
        # design -- the steps axis owns CA depth).
        pipelines = (
            ("", "fuse", "fuse,coarsen:factor=4", "fuse,coarsen:factor=8")
            if wide else ("",)
        )
        return cls(
            tiles=_thin_geometric(tiles, max_tiles),
            steps=steps,
            policies=policies,
            overlaps=overlaps,
            boundary_priorities=bprios,
            pipelines=pipelines,
            require_divisible=require_divisible,
        )
