"""repro.tuning -- model-guided autotuning of tile, step and policy.

The paper fixes its operating points by hand (Fig. 6's tile sweep,
Fig. 9's step study); this package turns that per-machine search into
a reusable service:

* :mod:`space`  -- the constrained search space (what may even run);
* :mod:`model`  -- free analytic ranking from the roofline + NetPIPE
  machine model;
* :mod:`search` -- successive-halving refinement with real runs,
  budgeted, contained, deterministic under a seed;
* :mod:`cache`  -- best-known configs persisted per (machine
  fingerprint, problem signature, backend, impl);
* :mod:`report` -- leaderboards and predicted-vs-measured deltas.

Entry points: ``tune(...)`` here, ``run(..., tile="auto")`` /
``run(..., tune=True)`` in :mod:`repro.core.runner`, and the
``python -m repro.cli tune`` subcommand.
"""

from .cache import TuningCache, cache_key, default_cache_path, problem_signature
from .model import Prediction, predict, rank
from .report import format_tuning_report, leaderboard_rows
from .search import Trial, TuningResult, resolve_auto, tune
from .space import Candidate, SearchSpace, block_extents, invalid_reason

__all__ = [
    "Candidate",
    "Prediction",
    "SearchSpace",
    "Trial",
    "TuningCache",
    "TuningResult",
    "block_extents",
    "cache_key",
    "default_cache_path",
    "format_tuning_report",
    "invalid_reason",
    "leaderboard_rows",
    "predict",
    "problem_signature",
    "rank",
    "resolve_auto",
    "tune",
]
