"""Persistent store of best-known configurations.

Tuning results are only as reusable as their context: a tile that is
optimal on NaCL's memory/network balance is wrong on Stampede2's, and
the temporal-blocking literature (Wittmann et al., arXiv:0912.4506)
shows the search must be redone whenever that balance changes.  The
cache therefore keys every entry by

    (machine fingerprint, problem signature, backend, impl)

where the machine fingerprint hashes *every* calibrated constant of
the :class:`~repro.machine.machine.MachineSpec` -- edit one bandwidth
and every dependent entry silently misses, forcing a re-tune.

The store is one JSON document with a schema version (unknown versions
are ignored wholesale, never migrated in place) and atomic writes
(temp file + ``os.replace``), so a killed tuning session can corrupt
nothing and concurrent writers lose at worst their own entry.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..core.signature import problem_signature
from ..machine.machine import MachineSpec
from ..stencil.problem import JacobiProblem
from .space import Candidate

#: Bump when the entry layout changes; old files are treated as empty.
SCHEMA_VERSION = 1

#: Entry fields a cached winner must provide to be trusted.
REQUIRED_FIELDS = ("tile", "steps", "policy", "overlap", "boundary_priority")

def default_cache_path() -> Path:
    """``$REPRO_TUNING_CACHE`` or ``~/.cache/repro/tuning.json``."""
    env = os.environ.get("REPRO_TUNING_CACHE")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "tuning.json"


def cache_key(
    machine: MachineSpec,
    problem: JacobiProblem,
    backend: str,
    impl: str,
    extra: str = "",
) -> str:
    """The store key: machine fingerprint + problem signature + how the
    refinement runs were produced.  ``extra`` folds in any
    non-candidate runner knobs (e.g. a kernel-adjustment ratio)."""
    key = f"{machine.fingerprint()}:{problem_signature(problem)}:{backend}:{impl}"
    return f"{key}:{extra}" if extra else key


class TuningCache:
    """JSON-backed map from :func:`cache_key` to a winning entry."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()

    # -- IO ------------------------------------------------------------

    def _load(self) -> dict:
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
            return {}
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _store(self, entries: dict) -> None:
        doc = {"schema": SCHEMA_VERSION, "entries": entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- API -----------------------------------------------------------

    def entries(self) -> dict:
        """Everything currently stored (a copy of the on-disk state)."""
        return self._load()

    def get(
        self,
        machine: MachineSpec,
        problem: JacobiProblem,
        backend: str,
        impl: str,
        extra: str = "",
    ) -> dict | None:
        entry = self._load().get(cache_key(machine, problem, backend, impl, extra))
        if entry is None or not all(f in entry for f in REQUIRED_FIELDS):
            return None
        return entry

    def put(
        self,
        machine: MachineSpec,
        problem: JacobiProblem,
        backend: str,
        impl: str,
        candidate: Candidate,
        extra: str = "",
        **metrics,
    ) -> dict:
        """Record ``candidate`` as the best-known config for this key.

        The on-disk file is re-read immediately before the atomic
        replace, so two concurrent tuners merge rather than clobber.
        """
        entry = {
            "tile": candidate.tile,
            "steps": candidate.steps,
            "policy": candidate.policy,
            "overlap": candidate.overlap,
            "boundary_priority": candidate.boundary_priority,
            "passes": candidate.passes,
            "machine": machine.name,
            "nodes": machine.nodes,
            "backend": backend,
            "impl": impl,
            "created": time.time(),
            **metrics,
        }
        entries = self._load()
        entries[cache_key(machine, problem, backend, impl, extra)] = entry
        self._store(entries)
        return entry

    def invalidate(
        self,
        machine: MachineSpec,
        problem: JacobiProblem,
        backend: str,
        impl: str,
        extra: str = "",
    ) -> bool:
        """Drop one entry; True if it existed."""
        entries = self._load()
        existed = entries.pop(
            cache_key(machine, problem, backend, impl, extra), None
        ) is not None
        if existed:
            self._store(entries)
        return existed

    def clear(self) -> None:
        self._store({})

    def candidate_of(self, entry: dict) -> Candidate:
        """Rehydrate the stored winner."""
        return Candidate(
            tile=int(entry["tile"]),
            steps=int(entry["steps"]),
            policy=str(entry["policy"]),
            overlap=bool(entry["overlap"]),
            boundary_priority=bool(entry["boundary_priority"]),
            # Entries written before the IR pass axis carry no field.
            passes=str(entry.get("passes", "") or ""),
        )
