"""Model-guided candidate ranking: the cheap first pass of the tuner.

Before any run -- simulated or measured -- every candidate gets an
analytic time estimate assembled from the pieces the repository already
calibrates against the paper: the roofline kernel-cost model
(:mod:`repro.stencil.cost`, Fig. 6's plateau) and the NetPIPE-shaped
network curve (:mod:`repro.machine.network`, Fig. 5).  The estimate
reproduces the three effects that shape Figs. 6 and 9:

* **per-task overhead** drowns tiny tiles (many tasks, fixed cost each);
* **wave quantisation / starvation** punishes oversized tiles (fewer
  tiles than workers leaves cores idle -- the right-hand cliff of
  Fig. 6);
* **message amortisation vs redundant work** trades the CA step ``s``:
  fewer, fatter messages against the replicated halo FLOPs.

The model is deliberately a ranking device, not a clock: successive
halving (:mod:`repro.tuning.search`) refines the shortlist with actual
runs.  Its job is only to put the paper's operating points near the
top of the list so the run budget is spent where it matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..distgrid.partition import ProcessGrid, even_split
from ..machine.machine import MachineSpec
from ..stencil.cost import KernelCostModel
from ..stencil.problem import JacobiProblem
from .space import Candidate


@dataclass(frozen=True)
class Prediction:
    """One candidate's modelled performance."""

    candidate: Candidate
    time_s: float
    gflops: float
    compute_s: float
    comm_s: float
    messages_per_block: int

    def as_record(self) -> dict:
        return {
            "tile": self.candidate.tile,
            "steps": self.candidate.steps,
            "policy": self.candidate.policy,
            "overlap": self.candidate.overlap,
            "boundary_priority": self.candidate.boundary_priority,
            "predicted_s": self.time_s,
            "predicted_gflops": self.gflops,
        }


def predict(
    problem: JacobiProblem,
    machine: MachineSpec,
    impl: str,
    candidate: Candidate,
    ratio: float = 1.0,
) -> Prediction:
    """Analytic run-time estimate for one candidate.

    Models the busiest (interior) node: per ``s``-iteration block, the
    compute side is ``ceil(tiles/workers)`` waves of one task's cost
    (kernel + ghost copies + runtime overhead), the communication side
    is the comm thread serialising one ``s``-deep strip message per
    remote-facing boundary tile.  Overlap takes the max of the two
    sides, no overlap their sum -- iterated over ``ceil(T/s)`` blocks.
    ``ratio`` is the paper's kernel-adjustment knob (section VI-D):
    shrinking it shifts the balance toward communication, which is
    exactly when larger CA steps start paying off.
    """
    if impl not in ("base-parsec", "ca-parsec"):
        raise ValueError(
            f"the tuning model covers the PaRSEC implementations, not {impl!r}"
        )
    tile = candidate.tile
    pg = ProcessGrid.square(machine.nodes)
    block_r = max(even_split(problem.shape[0], pg.rows))
    block_c = max(even_split(problem.shape[1], pg.cols))
    tiles_r = math.ceil(block_r / tile)
    tiles_c = math.ceil(block_c / tile)
    ntiles = tiles_r * tiles_c
    node = machine.node
    workers = node.compute_cores if candidate.overlap else node.cores

    iterations = max(1, problem.iterations)
    s = candidate.steps if impl == "ca-parsec" else 1
    s_eff = min(s, iterations)

    cost = KernelCostModel(machine, ratio=ratio)
    # One task advances its tile s_eff sweeps; sweep k needs the halo
    # frame of width (s_eff - k), so the replicated work is the sum of
    # shrinking frames around the tile (interior-tile upper bound).
    core_points = tile * tile * s_eff
    redundant_points = sum(
        (tile + 2 * k) ** 2 - tile * tile for k in range(1, s_eff)
    )
    copy_bytes = 8.0 * ((tile + 2 * s_eff) ** 2 - tile * tile)
    task_s = (
        node.task_overhead
        + cost.update_cost(core_points, redundant_points, tile * tile, workers)
        + cost.copy_cost(copy_bytes)
    )
    waves = math.ceil(ntiles / workers)
    compute_s = waves * task_s

    # Remote sides of the busiest node: 2 per partitioned dimension
    # (1 when only two blocks exist along it, 0 when unsplit).
    remote_r = min(2, pg.rows - 1)
    remote_c = min(2, pg.cols - 1)
    messages = tiles_c * remote_r + tiles_r * remote_c
    strip_bytes = 8.0 * tile * s_eff
    comm_s = messages * machine.network.message_time(strip_bytes)

    block_s = max(compute_s, comm_s) if candidate.overlap else compute_s + comm_s
    nblocks = math.ceil(iterations / s_eff)
    total_s = nblocks * block_s
    gflops = problem.total_flops / total_s / 1e9 if total_s > 0 else 0.0
    return Prediction(
        candidate=candidate,
        time_s=total_s,
        gflops=gflops,
        compute_s=nblocks * compute_s,
        comm_s=nblocks * comm_s,
        messages_per_block=messages,
    )


def rank(
    problem: JacobiProblem,
    machine: MachineSpec,
    impl: str,
    candidates: Sequence[Candidate],
    ratio: float = 1.0,
) -> list[Prediction]:
    """All candidates, fastest-predicted first (candidate order breaks
    ties, so the ranking is deterministic)."""
    preds = [predict(problem, machine, impl, c, ratio=ratio) for c in candidates]
    preds.sort(key=lambda p: (p.time_s, p.candidate))
    return preds
