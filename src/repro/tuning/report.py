"""Tuning reports in the repository's table style.

Two views matter after a tuning session: the **leaderboard** (which
configurations survived, at what fidelity, and how fast they were) and
the **predicted-vs-measured deltas** (how far the analytic model was
from the runs that refined it -- the same closing-the-loop discipline
as :mod:`repro.exec.compare`).
"""

from __future__ import annotations

from ..analysis.tables import format_table
from .search import TuningResult


def leaderboard_rows(result: TuningResult, limit: int | None = None) -> list[tuple]:
    """Best configuration first; each candidate appears once with its
    highest-fidelity successful score."""
    best: dict = {}
    for trial in result.trials:
        if not trial.ok:
            continue
        prev = best.get(trial.candidate)
        if prev is None or trial.fidelity > prev.fidelity:
            best[trial.candidate] = trial
    predicted = {p.candidate: p.gflops for p in result.predictions}
    ranked = sorted(best.values(), key=lambda t: (-t.gflops, t.candidate))
    rows = []
    for rank, trial in enumerate(ranked[:limit], start=1):
        pred = predicted.get(trial.candidate)
        delta = (
            f"{100 * (trial.gflops - pred) / pred:+.1f}%" if pred else "-"
        )
        rows.append((
            rank, trial.candidate.tile, trial.candidate.steps,
            trial.candidate.policy, trial.backend, trial.fidelity,
            trial.gflops, pred if pred is not None else float("nan"), delta,
        ))
    return rows


LEADERBOARD_HEADERS = (
    "#", "tile", "s", "policy", "backend", "iters",
    "GFLOP/s", "predicted", "delta",
)


def failures_rows(result: TuningResult) -> list[tuple]:
    return [
        (t.candidate.label(), t.backend, t.status, t.detail)
        for t in result.trials if not t.ok
    ]


def format_tuning_report(result: TuningResult, limit: int = 12) -> str:
    """The full post-tuning printout: provenance, leaderboard, winner."""
    m = result.machine
    lines = [
        f"tuning {result.impl} on {m.name} x{m.nodes} "
        f"({result.problem.shape[0]}^2 x {result.problem.iterations} iters), "
        f"refinement backend {result.backend!r}",
        f"source: {result.source} -- {result.runs_used} of {result.budget} "
        f"budgeted runs used ({result.measured_runs} measured)",
    ]
    if result.rungs:
        sched = " -> ".join(f"{n}@{fid}it" for fid, n in result.rungs)
        lines.append(f"halving schedule: {sched}")
    rows = leaderboard_rows(result, limit)
    if rows:
        lines.append(format_table(LEADERBOARD_HEADERS, rows, title="leaderboard"))
    failures = failures_rows(result)
    if failures:
        lines.append(format_table(
            ("candidate", "backend", "status", "detail"), failures,
            title="contained failures",
        ))
    w = result.winner
    lines.append(
        f"best: tile={w.tile} steps={w.steps} policy={w.policy} "
        f"overlap={w.overlap} boundary_priority={w.boundary_priority} "
        f"({result.winner_gflops:.2f} GFLOP/s)"
    )
    return "\n".join(lines)


def predicted_vs_measured_rows(result: TuningResult) -> list[tuple]:
    """Model error per refined candidate (run minus prediction)."""
    predicted = {p.candidate: p for p in result.predictions}
    rows = []
    for trial in result.trials:
        pred = predicted.get(trial.candidate)
        if not trial.ok or pred is None or pred.gflops <= 0:
            continue
        rows.append((
            trial.candidate.label(), trial.backend, trial.fidelity,
            pred.gflops, trial.gflops,
            f"{100 * (trial.gflops - pred.gflops) / pred.gflops:+.1f}%",
        ))
    return rows


PREDICTED_HEADERS = (
    "candidate", "backend", "iters", "predicted GFLOP/s",
    "run GFLOP/s", "delta",
)
