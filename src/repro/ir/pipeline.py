"""Pass registry, pipeline-spec parsing and the verifying manager.

A pipeline is written ``"fuse,coarsen:factor=4,latency:horizon=3"``:
comma-separated pass specs, each ``name[:key=value[,key=value...]]``.
A comma segment that contains ``=`` but no ``:`` continues the
previous pass's parameter list, so ``latency:horizon=3,boost=2`` is
one pass with two parameters, not two passes.

:class:`PassManager` runs the passes in order and, after every one,
re-finalizes the rewritten graph with full validation, proves it
acyclic, and verifies each invariant the pass declared in
``preserves``.  A violation raises :class:`~repro.ir.core.PassError`
-- a rewrite that changes the useful work, the terminal outputs or an
undeclared census dimension is a miscompile, never a warning.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Iterable

from ..runtime.graph import GraphError, TaskGraph
from .ca import CAInsertionPass
from .coarsen import CoarsenPass
from .core import GraphPass, PassContext, PassError
from .fuse import FusePass
from .latency import LatencyPass
from .report import GraphStats, PassReport, PipelineReport
from .rewrite import terminal_outputs

#: Registry of spec-addressable passes.
PASSES: dict[str, type[GraphPass]] = {
    FusePass.name: FusePass,
    CoarsenPass.name: CoarsenPass,
    LatencyPass.name: LatencyPass,
    CAInsertionPass.name: CAInsertionPass,
}


# -- spec parsing ---------------------------------------------------------


def parse_pass(spec: str) -> GraphPass:
    """One ``name[:key=value,...]`` spec to a configured pass."""
    passes = parse_pipeline(spec)
    if len(passes) != 1:
        raise PassError(f"expected one pass spec, got {spec!r}")
    return passes[0]


def parse_pipeline(spec: str | Iterable[str | GraphPass] | None) -> list[GraphPass]:
    """A pipeline spec (string, or a list of specs/instances) to a
    pass list.  ``None``/empty yields an empty pipeline."""
    if spec is None:
        return []
    if isinstance(spec, GraphPass):
        return [spec]
    if not isinstance(spec, str):
        passes: list[GraphPass] = []
        for item in spec:
            if isinstance(item, GraphPass):
                passes.append(item)
            else:
                passes.extend(parse_pipeline(item))
        return passes

    segments = [s.strip() for s in spec.split(",") if s.strip()]
    groups: list[list[str]] = []
    for seg in segments:
        if "=" in seg and ":" not in seg and groups:
            groups[-1].append(seg)  # parameter continuation
        else:
            groups.append([seg])
    passes = []
    for group in groups:
        name, _, first = group[0].partition(":")
        name = name.strip()
        cls = PASSES.get(name)
        if cls is None:
            raise PassError(
                f"unknown pass {name!r}; available: {', '.join(sorted(PASSES))}"
            )
        params: dict[str, str] = {}
        for part in ([first] if first else []) + group[1:]:
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or not key:
                raise PassError(
                    f"pass {name!r}: malformed parameter {part!r} "
                    "(expected key=value)"
                )
            if key in params:
                raise PassError(f"pass {name!r}: duplicate parameter {key!r}")
            params[key] = value.strip()
        passes.append(cls.from_params(params))
    return passes


def pipeline_spec(passes: Iterable[GraphPass]) -> str:
    """The canonical spec string of a pass list (all parameters
    rendered, sorted) -- stable across equivalent spellings, so cache
    keys and signatures can use it verbatim."""
    return ",".join(p.spec() for p in passes)


def canonical_pipeline(spec: str | Iterable[str | GraphPass] | None) -> str:
    """Normalise any pipeline spelling to its canonical spec string."""
    return pipeline_spec(parse_pipeline(spec))


# -- invariants -----------------------------------------------------------


def _flops_equal(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


def _check_useful_flops(before, after, bg, ag):
    ok = _flops_equal(before.useful_flops, after.useful_flops)
    return ok, f"{before.useful_flops} -> {after.useful_flops}"


def _check_redundant_flops(before, after, bg, ag):
    ok = _flops_equal(before.redundant_flops, after.redundant_flops)
    return ok, f"{before.redundant_flops} -> {after.redundant_flops}"


def _check_remote_census(before, after, bg, ag):
    ok = (
        before.remote_messages == after.remote_messages
        and before.remote_bytes == after.remote_bytes
        and before.census.by_pair == after.census.by_pair
    )
    return ok, (
        f"{before.remote_messages} msgs/{before.remote_bytes} B -> "
        f"{after.remote_messages} msgs/{after.remote_bytes} B"
    )


def _check_local_census(before, after, bg, ag):
    ok = (
        before.local_edges == after.local_edges
        and before.local_bytes == after.local_bytes
    )
    return ok, (
        f"{before.local_edges} edges/{before.local_bytes} B -> "
        f"{after.local_edges} edges/{after.local_bytes} B"
    )


def _check_messages_not_increased(before, after, bg, ag):
    ok = after.remote_messages <= before.remote_messages
    return ok, f"{before.remote_messages} -> {after.remote_messages} msgs"


def _check_terminal_outputs(before, after, bg, ag):
    missing = terminal_outputs(bg) - terminal_outputs(ag)
    return not missing, (
        f"{len(missing)} terminal result slots vanished" if missing
        else "terminal result slots preserved"
    )


#: invariant name -> check(before_stats, after_stats, before_graph,
#: after_graph) -> (ok, detail).
INVARIANTS: dict[str, Callable[..., tuple[bool, str]]] = {
    "useful_flops": _check_useful_flops,
    "redundant_flops": _check_redundant_flops,
    "remote_census": _check_remote_census,
    "local_census": _check_local_census,
    "remote_messages_not_increased": _check_messages_not_increased,
    "terminal_outputs": _check_terminal_outputs,
}


# -- the manager ----------------------------------------------------------


class PassManager:
    """Run a pass pipeline with per-pass verification."""

    def __init__(self, passes: str | Iterable[str | GraphPass]) -> None:
        self.passes = parse_pipeline(passes)
        if not self.passes:
            raise PassError("empty pass pipeline")

    @property
    def spec(self) -> str:
        return pipeline_spec(self.passes)

    def run(self, build: Any, ctx: PassContext) -> tuple[Any, PipelineReport]:
        """Apply every pass to ``build``; return the rewritten build
        and the full pipeline evidence."""
        graph: TaskGraph = build.graph
        before = GraphStats.of(graph)
        reports: list[PassReport] = []
        for p in self.passes:
            t0 = time.perf_counter()
            new_build, notes = p.apply(build, ctx)
            new_graph: TaskGraph = new_build.graph
            if not new_graph.finalized:
                new_graph.finalize(validate=True)
            try:
                new_graph.topological_order()  # proves acyclicity
            except GraphError as exc:
                raise PassError(
                    f"pass {p.spec()!r} produced a cyclic graph: {exc}"
                ) from exc
            after = GraphStats.of(new_graph)
            invariants: dict[str, bool] = {}
            for name in p.preserves:
                check = INVARIANTS.get(name)
                if check is None:
                    raise PassError(
                        f"pass {p.spec()!r} declares unknown invariant "
                        f"{name!r}"
                    )
                ok, detail = check(before, after, graph, new_graph)
                invariants[name] = ok
                if not ok:
                    raise PassError(
                        f"pass {p.spec()!r} violated invariant {name!r}: "
                        f"{detail}"
                    )
            reports.append(PassReport(
                name=p.name,
                spec=p.spec(),
                before=before,
                after=after,
                invariants=invariants,
                notes=dict(notes or {}),
                elapsed_s=time.perf_counter() - t0,
            ))
            build, graph, before = new_build, new_graph, after
        return build, PipelineReport(spec=self.spec, passes=tuple(reports))
