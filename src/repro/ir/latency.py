"""Latency tolerance: prioritise work that feeds remote consumers.

Eijkhout's latency-hiding observation for stencils: the runtime can
absorb network latency only if, at the moment a halo send should go
out, the tiles that produce it are already done -- and if enough
*independent* interior work remains to chew on while the receive is
in flight.  Task priority is the knob the schedulers here expose
(threads backend pops highest-priority-first; the simulator breaks
ties by it), so this pass raises the priority of every task within
``horizon`` dependency hops of a remote send, steepest at the send
itself.

Purely a scheduling-hint rewrite: the graph structure, every flow and
the whole census are bit-identical, and the manager verifies that.
"""

from __future__ import annotations

from ..runtime.graph import TaskGraph
from ..runtime.task import Task, TaskKey
from .core import GraphPass, PassContext, int_param, reject_unknown
from .rewrite import clone_task, rebuild_graph, with_graph


def remote_send_distance(graph: TaskGraph) -> dict[TaskKey, int]:
    """Dependency-hop distance from each task to the nearest task
    (itself included, distance 0) whose output crosses nodes."""
    inf = len(graph.tasks) + 1
    dist = {key: inf for key in graph.tasks}
    successors: dict[TaskKey, list[TaskKey]] = {key: [] for key in graph.tasks}
    for task in graph:
        for flow in task.inputs:
            successors[flow.producer].append(task.key)
            if graph[flow.producer].node != task.node:
                dist[flow.producer] = 0
    for key in reversed(graph.topological_order()):
        for succ in successors[key]:
            dist[key] = min(dist[key], dist[succ] + 1)
    return dist


class LatencyPass(GraphPass):
    """Boost priorities along the frontier that feeds remote sends."""

    name = "latency"
    preserves = (
        "useful_flops",
        "redundant_flops",
        "remote_census",
        "local_census",
        "terminal_outputs",
    )

    def __init__(self, horizon: int = 3, boost: int = 2) -> None:
        #: How many dependency hops ahead of a remote send still get a bump.
        self.horizon = horizon
        #: Priority increment per hop of proximity.
        self.boost = boost

    def params(self) -> dict:
        return {"horizon": self.horizon, "boost": self.boost}

    @classmethod
    def from_params(cls, params: dict[str, str]) -> "LatencyPass":
        horizon = int_param(params, "horizon", 3, cls.name, minimum=1)
        boost = int_param(params, "boost", 2, cls.name, minimum=1)
        reject_unknown(params, cls.name)
        return cls(horizon=horizon, boost=boost)

    def apply(self, build, ctx: PassContext):
        graph: TaskGraph = build.graph
        dist = remote_send_distance(graph)
        new_tasks: list[Task] = []
        bumped = 0
        for task in graph:
            d = dist[task.key]
            if d <= self.horizon:
                bumped += 1
                new_tasks.append(clone_task(
                    task,
                    priority=task.priority + self.boost * (self.horizon - d + 1),
                ))
            else:
                new_tasks.append(task)
        if not bumped:
            return build, {"reprioritized": 0}
        rewritten = rebuild_graph(new_tasks)
        notes = {
            "reprioritized": bumped,
            "horizon": self.horizon,
            "boost": self.boost,
        }
        return with_graph(build, rewritten), notes
