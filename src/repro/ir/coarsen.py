"""Coarsening: cluster small-tile tasks into super-tasks.

Small tiles (the paper's Fig. 6 left edge) drown in per-task runtime
overhead and per-message software overhead.  This pass groups tasks
that live on the same node *and* the same topological level --
same-level tasks are provably independent, and every edge crosses
levels upward, so contraction cannot create a cycle -- into
super-tasks of at most ``factor`` members with summed cost/flops and
unioned external flows.

Flows between two super-tasks (or from a super-task to a plain task)
are coalesced into one *packed* flow whose payload is the
:class:`~repro.ir.rewrite.PackedPayload` bundle of the member
payloads and whose size is the sum of the member message sizes: n
messages become one message of the same total payload, which is
exactly where the per-message overhead saving comes from.  Plain
consumers of coarsened producers get an
:class:`~repro.ir.rewrite.UnpackKernel` adapter, so member kernels
never see the packing.

Tasks owning a terminal output slot (a tag with no consumers -- the
final grid tiles) are never coarsened: the result keys the build
promises must stay addressable.
"""

from __future__ import annotations

from ..runtime.graph import TaskGraph
from ..runtime.task import Flow, Task, TaskKey
from .core import GraphPass, PassContext, int_param, reject_unknown
from .rewrite import (
    SuperKernel,
    UnpackKernel,
    clone_task,
    rebuild_graph,
    sort_key,
    topo_levels,
    with_graph,
)

#: Kind label of the emitted super-tasks.
COARSE_KIND = "coarse"


def _message_size(graph: TaskGraph, producer: Task, tag: str, nbytes: int) -> int:
    """The census/engine size rule for one flow: the largest size any
    party declared."""
    return max(nbytes, producer.out_nbytes.get(tag, 0))


class CoarsenPass(GraphPass):
    """Merge same-node same-level task groups into super-tasks."""

    name = "coarsen"
    preserves = (
        "useful_flops",
        "redundant_flops",
        "remote_messages_not_increased",
        "terminal_outputs",
    )

    def __init__(self, factor: int = 4) -> None:
        #: Members per super-task (>= 2; 1 would be the identity).
        self.factor = factor

    def params(self) -> dict:
        return {"factor": self.factor}

    @classmethod
    def from_params(cls, params: dict[str, str]) -> "CoarsenPass":
        factor = int_param(params, "factor", 4, cls.name, minimum=2)
        reject_unknown(params, cls.name)
        return cls(factor=factor)

    # -- grouping ---------------------------------------------------------

    def _groups(self, graph: TaskGraph) -> dict[TaskKey, tuple]:
        """Map member key -> group id ``("ir-coarse", node, level, idx)``
        for every coarsened task."""
        levels = topo_levels(graph)
        buckets: dict[tuple[int, int], list[TaskKey]] = {}
        for task in graph:
            tags = graph.out_tags.get(task.key, ())
            if any(not graph.consumers.get((task.key, tag)) for tag in tags):
                continue  # terminal slot owner stays addressable
            buckets.setdefault((task.node, levels[task.key]), []).append(task.key)
        group_of: dict[TaskKey, tuple] = {}
        for (node, level), keys in buckets.items():
            keys.sort(key=sort_key)
            for idx in range(0, len(keys), self.factor):
                chunk = keys[idx:idx + self.factor]
                if len(chunk) < 2:
                    continue  # singleton super-tasks are the identity
                gid = ("ir-coarse", node, level, idx // self.factor)
                for key in chunk:
                    group_of[key] = gid
        return group_of

    # -- rewrite ----------------------------------------------------------

    def apply(self, build, ctx: PassContext):
        graph: TaskGraph = build.graph
        group_of = self._groups(graph)
        if not group_of:
            return build, {"super_tasks": 0, "members": 0}

        members: dict[tuple, list[Task]] = {}
        for key, gid in group_of.items():
            members.setdefault(gid, []).append(graph[key])
        for tasks in members.values():
            tasks.sort(key=lambda t: sort_key(t.key))

        # Demand of every consumer (a group id or a plain task key) on
        # every producer group: which member outputs it needs, at what
        # message size.
        def consumer_id(key: TaskKey):
            gid = group_of.get(key)
            return ("g", gid) if gid is not None else ("t", key)

        demand: dict[tuple, dict[tuple, dict[tuple[TaskKey, str], int]]] = {}
        for task in graph:
            cid = consumer_id(task.key)
            for flow in task.inputs:
                pgid = group_of.get(flow.producer)
                if pgid is None:
                    continue
                part = (flow.producer, flow.tag)
                size = _message_size(
                    graph, graph[flow.producer], flow.tag, flow.nbytes
                )
                parts = demand.setdefault(pgid, {}).setdefault(cid, {})
                parts[part] = max(parts.get(part, 0), size)

        # Assign one packed output tag per (producer group, consumer).
        pack_tag: dict[tuple, dict[tuple, str]] = {}
        for pgid, consumers in demand.items():
            tags = pack_tag[pgid] = {}
            for idx, cid in enumerate(sorted(consumers, key=sort_key)):
                tags[cid] = f"pk{idx}"

        def packed_flow(pgid: tuple, cid: tuple) -> Flow:
            parts = demand[pgid][cid]
            return Flow(pgid, pack_tag[pgid][cid], sum(parts.values()))

        new_tasks: list[Task] = []
        for gid, group in sorted(members.items(), key=lambda kv: sort_key(kv[0])):
            flows: dict[tuple[TaskKey, str], int] = {}
            packed: dict[tuple, Flow] = {}
            for member in group:
                for flow in member.inputs:
                    pgid = group_of.get(flow.producer)
                    if pgid is not None:
                        packed.setdefault(pgid, packed_flow(pgid, ("g", gid)))
                    else:
                        fkey = (flow.producer, flow.tag)
                        flows[fkey] = max(flows.get(fkey, 0), flow.nbytes)
            inputs = tuple(
                Flow(producer, tag, nbytes)
                for (producer, tag), nbytes in sorted(
                    flows.items(),
                    key=lambda item: (sort_key(item[0][0]), item[0][1]),
                )
            ) + tuple(packed[pgid] for pgid in sorted(packed, key=sort_key))
            pack_spec = {
                pack_tag[gid][cid]: tuple(sorted(parts, key=sort_key))
                for cid, parts in demand.get(gid, {}).items()
            }
            out_nbytes = {
                pack_tag[gid][cid]: sum(parts.values())
                for cid, parts in demand.get(gid, {}).items()
            }
            kernel = None
            if any(m.kernel is not None for m in group):
                kernel = SuperKernel(tuple(group), pack_spec)
            new_tasks.append(Task(
                key=gid,
                node=gid[1],
                inputs=inputs,
                cost=sum(m.cost for m in group),
                flops=sum(m.flops for m in group),
                redundant_flops=sum(m.redundant_flops for m in group),
                kernel=kernel,
                out_nbytes=out_nbytes,
                priority=max(m.priority for m in group),
                kind=COARSE_KIND,
            ))

        for task in graph:
            if task.key in group_of:
                continue
            packed_producers = {
                group_of[f.producer] for f in task.inputs
                if f.producer in group_of
            }
            if not packed_producers:
                new_tasks.append(task)
                continue
            cid = ("t", task.key)
            inputs = tuple(
                f for f in task.inputs if f.producer not in group_of
            ) + tuple(
                packed_flow(pgid, cid)
                for pgid in sorted(packed_producers, key=sort_key)
            )
            kernel = task.kernel
            if kernel is not None:
                kernel = UnpackKernel(kernel)
            new_tasks.append(clone_task(task, inputs=inputs, kernel=kernel))

        rewritten = rebuild_graph(new_tasks)
        notes = {
            "super_tasks": len(members),
            "members": len(group_of),
            "factor": self.factor,
        }
        return with_graph(build, rewritten), notes
