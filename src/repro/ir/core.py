"""The pass protocol: what a rewrite is and what it runs against.

A :class:`GraphPass` consumes a build (a finalized
:class:`~repro.runtime.graph.TaskGraph` plus the context needed to run
and interpret it, e.g. :class:`~repro.core.dataflow.BuildResult`) and
returns a rewritten build together with free-form notes for the pass
report.  Passes never mutate their input: the original graph stays
valid, the rewrite produces a fresh one.

Every pass declares which structural *invariants* it preserves (see
:data:`INVARIANTS` in :mod:`repro.ir.pipeline`); the
:class:`~repro.ir.pipeline.PassManager` verifies the declared set
after each rewrite and refuses a violating pass with
:class:`PassError` -- a rewrite that silently changed the useful work
or the terminal outputs is a miscompile, not an optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..machine.machine import MachineSpec


class PassError(ValueError):
    """A pass could not apply, was misconfigured, or violated one of
    its declared invariants."""


@dataclass(frozen=True)
class PassContext:
    """Everything a rewrite may consult beyond the graph itself.

    ``with_kernels`` tells structure-building passes (the CA
    insertion) whether to attach real kernels; ``ratio`` /
    ``include_redundant`` parameterise the cost model exactly as the
    runner's own build path does, so a pass-built graph prices its
    tasks identically to a hand-built one.
    """

    machine: MachineSpec
    with_kernels: bool = False
    ratio: float = 1.0
    include_redundant: bool | None = None


class GraphPass:
    """Base class of every rewrite pass.

    Subclasses set :attr:`name`, declare :attr:`preserves` (invariant
    names from :data:`repro.ir.pipeline.INVARIANTS`) and implement
    :meth:`apply`.  Passes must be stateless and reusable: the same
    instance may run inside several pipelines.
    """

    #: Registry name, also the head of the spec string (``"fuse"``).
    name: str = "?"

    #: Invariants the manager verifies after this pass.
    preserves: tuple[str, ...] = ("useful_flops",)

    def apply(self, build: Any, ctx: PassContext) -> tuple[Any, dict]:
        """Rewrite ``build`` into ``(new_build, notes)``.

        ``new_build`` must expose ``.graph`` (finalized or not -- the
        manager finalizes with validation either way) and keep
        whatever result-interpretation contract the input had
        (``assemble_grid`` et al.).  ``notes`` is a JSON-safe dict
        surfaced verbatim in the :class:`~repro.ir.report.PassReport`.
        """
        raise NotImplementedError

    def params(self) -> dict[str, Any]:
        """The pass's configuration, every knob explicit (defaults
        included) so the canonical spec string is stable."""
        return {}

    def spec(self) -> str:
        """Canonical ``name:key=value,...`` form -- what cache keys,
        signatures and reports record."""
        params = self.params()
        if not params:
            return self.name
        rendered = ",".join(f"{k}={params[k]}" for k in sorted(params))
        return f"{self.name}:{rendered}"

    @classmethod
    def from_params(cls, params: dict[str, str]) -> "GraphPass":
        """Build an instance from parsed ``key=value`` strings.

        The default accepts no parameters; parameterised passes
        override this and convert/validate each value.
        """
        if params:
            raise PassError(
                f"pass {cls.name!r} takes no parameters, got "
                f"{sorted(params)}"
            )
        return cls()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec()}>"


def int_param(params: dict[str, str], key: str, default: int,
              pass_name: str, minimum: int = 0) -> int:
    """Parse one integer pass parameter with a typed error."""
    raw = params.pop(key, None)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise PassError(
            f"pass {pass_name!r}: parameter {key}={raw!r} is not an "
            "integer"
        ) from None
    if value < minimum:
        raise PassError(
            f"pass {pass_name!r}: {key} must be >= {minimum}, got {value}"
        )
    return value


def reject_unknown(params: dict[str, str], pass_name: str) -> None:
    """After the known keys were popped, anything left is a typo."""
    if params:
        raise PassError(
            f"pass {pass_name!r} got unknown parameters {sorted(params)}"
        )
