"""Machine-checkable before/after evidence for every rewrite.

A :class:`PassReport` records what one pass did to the graph --
task/edge/message/byte counts and flop totals before and after, the
invariants verified, plus the pass's own notes.  A
:class:`PipelineReport` strings them together and exposes the
end-to-end deltas the CLI and the benchmarks assert on (``messages
saved``, makespan-relevant task reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..runtime.graph import TaskGraph
from ..runtime.task import EdgeCensus


@dataclass(frozen=True)
class GraphStats:
    """One graph's static footprint, as censused."""

    tasks: int
    local_edges: int
    local_bytes: int
    remote_messages: int
    remote_bytes: int
    useful_flops: float
    redundant_flops: float
    #: The full census, kept for by-pair invariant checks.
    census: EdgeCensus = field(compare=False, repr=False, default=None)

    @classmethod
    def of(cls, graph: TaskGraph) -> "GraphStats":
        census = graph.census()
        useful, redundant = graph.total_flops()
        return cls(
            tasks=len(graph),
            local_edges=census.local_edges,
            local_bytes=census.local_bytes,
            remote_messages=census.remote_messages,
            remote_bytes=census.remote_bytes,
            useful_flops=useful,
            redundant_flops=redundant,
            census=census,
        )

    def to_doc(self) -> dict[str, Any]:
        return {
            "tasks": self.tasks,
            "local_edges": self.local_edges,
            "local_bytes": self.local_bytes,
            "remote_messages": self.remote_messages,
            "remote_bytes": self.remote_bytes,
            "useful_flops": self.useful_flops,
            "redundant_flops": self.redundant_flops,
        }


@dataclass(frozen=True)
class PassReport:
    """What one pass did, with its invariant verdicts."""

    name: str
    spec: str
    before: GraphStats
    after: GraphStats
    #: invariant name -> verified (the manager raises on any False,
    #: so a surviving report is all-True; kept explicit for the docs'
    #: machine-checkable contract).
    invariants: dict[str, bool] = field(default_factory=dict)
    notes: dict[str, Any] = field(default_factory=dict)
    #: Wall time the manager spent applying and verifying this pass --
    #: the raw material of the lifecycle ``ir_passes`` span.
    elapsed_s: float = 0.0

    @property
    def tasks_removed(self) -> int:
        return self.before.tasks - self.after.tasks

    @property
    def messages_saved(self) -> int:
        return self.before.remote_messages - self.after.remote_messages

    @property
    def local_edges_removed(self) -> int:
        return self.before.local_edges - self.after.local_edges

    @property
    def remote_bytes_delta(self) -> int:
        return self.after.remote_bytes - self.before.remote_bytes

    def to_doc(self) -> dict[str, Any]:
        return {
            "pass": self.name,
            "spec": self.spec,
            "before": self.before.to_doc(),
            "after": self.after.to_doc(),
            "tasks_removed": self.tasks_removed,
            "messages_saved": self.messages_saved,
            "local_edges_removed": self.local_edges_removed,
            "remote_bytes_delta": self.remote_bytes_delta,
            "invariants": dict(self.invariants),
            "notes": dict(self.notes),
            "elapsed_s": self.elapsed_s,
        }

    def format(self) -> str:
        b, a = self.before, self.after
        lines = [
            f"pass {self.spec}: tasks {b.tasks} -> {a.tasks}, "
            f"messages saved {self.messages_saved} "
            f"({b.remote_messages} -> {a.remote_messages} msgs, "
            f"{b.remote_bytes} -> {a.remote_bytes} B), "
            f"local edges {b.local_edges} -> {a.local_edges}",
        ]
        if self.notes:
            rendered = "  ".join(f"{k}={v}" for k, v in sorted(self.notes.items()))
            lines.append(f"  notes: {rendered}")
        checked = " ".join(
            f"{name}={'ok' if ok else 'VIOLATED'}"
            for name, ok in sorted(self.invariants.items())
        )
        if checked:
            lines.append(f"  invariants: {checked}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PipelineReport:
    """The whole pipeline's evidence, pass by pass."""

    spec: str
    passes: tuple[PassReport, ...]

    @property
    def elapsed_s(self) -> float:
        return sum(p.elapsed_s for p in self.passes)

    @property
    def before(self) -> GraphStats:
        return self.passes[0].before

    @property
    def after(self) -> GraphStats:
        return self.passes[-1].after

    @property
    def tasks_removed(self) -> int:
        return self.before.tasks - self.after.tasks

    @property
    def messages_saved(self) -> int:
        return self.before.remote_messages - self.after.remote_messages

    def to_doc(self) -> dict[str, Any]:
        return {
            "pipeline": self.spec,
            "passes": [p.to_doc() for p in self.passes],
            "tasks_removed": self.tasks_removed,
            "messages_saved": self.messages_saved,
            "elapsed_s": self.elapsed_s,
        }

    def format(self) -> str:
        lines = [f"pipeline {self.spec}"]
        lines.extend(p.format() for p in self.passes)
        lines.append(
            f"pipeline total: tasks {self.before.tasks} -> "
            f"{self.after.tasks}, messages saved {self.messages_saved}"
        )
        return "\n".join(lines)
