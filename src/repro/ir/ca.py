"""Communication avoidance as a rewrite pass.

Re-expresses :func:`repro.runtime.ca_transform.transform_build` -- the
PA1 s-step deepening of the paper's Sec. IV -- inside the pass
pipeline, so ``--passes ca:steps=4`` and a hand-built
``ca-parsec --steps 4`` run produce census-identical graphs (the test
suite asserts exactly that).

Unlike the structural passes this one *re-derives* the graph from the
build's :class:`~repro.core.dataflow.StencilSpec`: redundant ghost
flops appear by design, remote bytes grow s-fold while message count
drops s-fold.  It therefore only preserves ``useful_flops`` plus the
terminal time-slice contract, and it demands a base (steps=1) stencil
build to start from.
"""

from __future__ import annotations

from ..runtime.ca_transform import CATransformError, transform_build
from .core import GraphPass, PassContext, PassError, int_param, reject_unknown


class CAInsertionPass(GraphPass):
    """Deepen a base stencil build into an s-step CA build."""

    name = "ca"
    preserves = ("useful_flops",)

    def __init__(self, steps: int) -> None:
        #: The s in s-step: time steps advanced per graph wave.
        self.steps = steps

    def params(self) -> dict:
        return {"steps": self.steps}

    @classmethod
    def from_params(cls, params: dict[str, str]) -> "CAInsertionPass":
        steps = int_param(params, "steps", 0, cls.name, minimum=1)
        reject_unknown(params, cls.name)
        if steps < 1:
            raise PassError("pass 'ca' requires steps=<s>, e.g. ca:steps=4")
        return cls(steps=steps)

    def apply(self, build, ctx: PassContext):
        spec = getattr(build, "spec", None)
        if spec is None:
            raise PassError(
                "pass 'ca' needs a stencil build exposing its spec; "
                f"got {type(build).__name__}"
            )
        if spec.steps != 1:
            raise PassError(
                f"pass 'ca' must start from a base (steps=1) build, "
                f"got steps={spec.steps}"
            )
        from ..stencil.cost import KernelCostModel

        cost = KernelCostModel(
            ctx.machine,
            ratio=ctx.ratio,
            include_redundant=ctx.include_redundant,
        )
        try:
            new_build = transform_build(
                build,
                ctx.machine,
                self.steps,
                cost=cost,
                with_kernels=ctx.with_kernels,
            )
        except CATransformError as exc:
            raise PassError(f"pass 'ca': {exc}") from exc
        notes = {"steps": self.steps, "tasks": len(new_build.graph)}
        return new_build, notes
