"""Tile fusion: merge producer->consumer chains on the same node.

A task whose *every* output is consumed by exactly one other task on
the same node gains nothing from being a separate schedulable unit:
the intermediate flow is a local edge the runtime still pays queue
and per-task overhead for.  This pass contracts such chains (in-trees,
in general: several single-consumer producers may feed one consumer)
into one task that runs the member kernels back-to-back.

The fused task keeps the chain *root*'s key (the final consumer), so
downstream flows, priorities of external consumers and the terminal
result slots are untouched; eligibility guarantees no intermediate
output was externally visible.  The remote census is bit-identical by
construction -- only same-node edges are ever internalised -- and the
manager verifies exactly that.
"""

from __future__ import annotations

from ..runtime.graph import TaskGraph
from ..runtime.task import Flow, Task, TaskKey
from .core import GraphPass, PassContext, int_param, reject_unknown
from .rewrite import (
    FusedKernel,
    clone_task,
    rebuild_graph,
    sort_key,
    with_graph,
)


def _fuse_edges(graph: TaskGraph, max_chain: int) -> dict[TaskKey, TaskKey]:
    """``a -> b`` contraction edges: ``a`` is fused into its sole
    consumer ``b``.  ``a`` qualifies when every one of its output tags
    has consumers (no terminal results vanish) and the union of those
    consumers is exactly one same-node task."""
    edges: dict[TaskKey, TaskKey] = {}
    for task in graph:
        tags = graph.out_tags.get(task.key, ())
        if not tags:
            continue
        consumers: set[TaskKey] = set()
        dead_end = False
        for tag in tags:
            cons = graph.consumers.get((task.key, tag), ())
            if not cons:
                dead_end = True  # a terminal slot must stay addressable
                break
            consumers.update(cons)
        if dead_end or len(consumers) != 1:
            continue
        consumer = next(iter(consumers))
        if graph[consumer].node == task.node:
            edges[task.key] = consumer
    if max_chain:
        # Cap component sizes by cutting every max_chain-th contraction
        # along each chain, walked from its deepest producer.
        depth: dict[TaskKey, int] = {}
        for key in graph.topological_order():
            nxt = edges.get(key)
            if nxt is None:
                continue
            depth[nxt] = depth.get(key, 1) + 1
            if depth[nxt] > max_chain:
                del edges[key]
                depth[nxt] = 1
    return edges


class FusePass(GraphPass):
    """Contract same-node single-consumer chains into one task."""

    name = "fuse"
    preserves = (
        "useful_flops",
        "redundant_flops",
        "remote_census",
        "terminal_outputs",
    )

    def __init__(self, max_chain: int = 0) -> None:
        #: Longest member chain one fused task may absorb (0 = unbounded).
        self.max_chain = max_chain

    def params(self) -> dict:
        return {"max_chain": self.max_chain}

    @classmethod
    def from_params(cls, params: dict[str, str]) -> "FusePass":
        max_chain = int_param(params, "max_chain", 0, cls.name)
        reject_unknown(params, cls.name)
        return cls(max_chain=max_chain)

    def apply(self, build, ctx: PassContext):
        graph: TaskGraph = build.graph
        edges = _fuse_edges(graph, self.max_chain)
        if not edges:
            return build, {"chains": 0, "members_fused": 0}

        # Component root: follow contraction edges to the task that is
        # not itself contracted away.
        root_of: dict[TaskKey, TaskKey] = {}

        def find_root(key: TaskKey) -> TaskKey:
            seen = []
            while key in edges and key not in root_of:
                seen.append(key)
                key = edges[key]
            root = root_of.get(key, key)
            for k in seen:
                root_of[k] = root
            return root

        members: dict[TaskKey, list[TaskKey]] = {}
        for key in graph.topological_order():  # members land in dep order
            root = find_root(key)
            if root != key or key in edges:
                members.setdefault(root, []).append(key)

        new_tasks: list[Task] = []
        chains = fused_members = 0
        for task in graph:
            key = task.key
            if key in edges:
                continue  # absorbed into its chain root
            chain = members.get(key)
            if not chain:
                new_tasks.append(task)
                continue
            chains += 1
            fused_members += len(chain)
            component = set(chain) | {key}
            member_tasks = tuple(graph[k] for k in chain) + (task,)
            flows: dict[tuple[TaskKey, str], int] = {}
            for member in member_tasks:
                for flow in member.inputs:
                    if flow.producer in component:
                        continue  # internalised edge
                    fkey = (flow.producer, flow.tag)
                    flows[fkey] = max(flows.get(fkey, 0), flow.nbytes)
            kernel = None
            if any(m.kernel is not None for m in member_tasks):
                kernel = FusedKernel(member_tasks, key)
            new_tasks.append(clone_task(
                task,
                inputs=tuple(
                    Flow(producer, tag, nbytes)
                    for (producer, tag), nbytes in sorted(
                        flows.items(), key=lambda item: (sort_key(item[0][0]), item[0][1])
                    )
                ),
                cost=sum(m.cost for m in member_tasks),
                flops=sum(m.flops for m in member_tasks),
                redundant_flops=sum(m.redundant_flops for m in member_tasks),
                priority=max(m.priority for m in member_tasks),
                kernel=kernel,
            ))
        rewritten = rebuild_graph(new_tasks)
        notes = {"chains": chains, "members_fused": fused_members}
        return with_graph(build, rewritten), notes
