"""Task-graph IR: rewrite passes over finalized graphs.

The builders in :mod:`repro.core` produce a task graph; this package
treats that graph as an intermediate representation and rewrites it
through a configurable pass pipeline -- tile fusion, coarsening,
latency tolerance, CA insertion -- each pass emitting a
machine-checkable :class:`~repro.ir.report.PassReport` and each
verified against the invariants it claims to preserve.

Entry points: ``run(..., passes="fuse,coarsen:factor=4")``,
``repro run --passes ...`` and ``repro ir`` on the CLI, and the
``passes`` axis of the autotuner.
"""

from .ca import CAInsertionPass
from .coarsen import CoarsenPass
from .core import GraphPass, PassContext, PassError
from .fuse import FusePass
from .latency import LatencyPass
from .pipeline import (
    INVARIANTS,
    PASSES,
    PassManager,
    canonical_pipeline,
    parse_pass,
    parse_pipeline,
    pipeline_spec,
)
from .report import GraphStats, PassReport, PipelineReport
from .rewrite import (
    FusedKernel,
    PackedPayload,
    SuperKernel,
    UnpackKernel,
    expand_inputs,
    pack_payload,
    terminal_outputs,
    topo_levels,
)

__all__ = [
    "CAInsertionPass",
    "CoarsenPass",
    "FusePass",
    "FusedKernel",
    "GraphPass",
    "GraphStats",
    "INVARIANTS",
    "LatencyPass",
    "PASSES",
    "PackedPayload",
    "PassContext",
    "PassError",
    "PassManager",
    "PassReport",
    "PipelineReport",
    "SuperKernel",
    "UnpackKernel",
    "canonical_pipeline",
    "expand_inputs",
    "pack_payload",
    "parse_pass",
    "parse_pipeline",
    "pipeline_spec",
    "terminal_outputs",
    "topo_levels",
]
