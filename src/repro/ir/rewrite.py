"""Shared rewrite machinery: graph rebuilding, payload packing and
the composite kernels the structural passes emit.

The execution contract every backend honours (engine, threads,
processes) is ``kernel(inputs, task) -> {tag: payload}`` with inputs
keyed ``(producer_key, tag)``.  Rewrites that merge tasks or coalesce
flows must keep *member* kernels oblivious: a fused or coarsened task
runs its original member kernels against the original key space, and
a :class:`PackedPayload` -- the aggregated payload of one coalesced
flow -- is transparently expanded back into original keys by
:func:`expand_inputs` before any member kernel sees it.  That single
normalisation point is what lets passes compose in any order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping

import numpy as np

from ..runtime.graph import TaskGraph
from ..runtime.task import Task, TaskKey
from .core import PassError


class PackedPayload(dict):
    """The payload of one coalesced flow: ``{(orig_key, tag): payload}``.

    A plain dict subclass so it pickles across the process backend's
    pipes unchanged; the type itself is the marker
    :func:`expand_inputs` dispatches on.
    """


def pack_payload(items: Mapping[tuple[TaskKey, str], Any]) -> PackedPayload:
    """Bundle member payloads, freezing arrays exactly as the engine
    does for singleton payloads (consumer mutation stays a bug)."""
    packed = PackedPayload(items)
    for payload in packed.values():
        if isinstance(payload, np.ndarray):
            payload.setflags(write=False)
    return packed


def expand_inputs(inputs: Mapping[tuple[TaskKey, str], Any]) -> dict:
    """Flatten any packed payloads back into the original key space."""
    out: dict[tuple[TaskKey, str], Any] = {}
    for key, value in inputs.items():
        if isinstance(value, PackedPayload):
            out.update(value)
        else:
            out[key] = value
    return out


def _member_inputs(store: dict, member: Task) -> dict:
    """Gather one member's inputs from the composite-local store,
    auto-filling absent zero-byte control edges with ``None`` (the
    same leniency the engine applies at task boundaries)."""
    gathered: dict[tuple[TaskKey, str], Any] = {}
    for flow in member.inputs:
        key = (flow.producer, flow.tag)
        if key in store:
            gathered[key] = store[key]
        elif flow.nbytes == 0:
            gathered[key] = None
        else:
            raise RuntimeError(
                f"payload {key!r} missing when fused member "
                f"{member.key!r} started"
            )
    return gathered


def _run_member(store: dict, member: Task) -> None:
    """Run one member kernel against the composite store, publishing
    its outputs under the member's original key."""
    outputs = (
        dict(member.kernel(_member_inputs(store, member), member))
        if member.kernel is not None else {}
    )
    for tag, payload in outputs.items():
        if isinstance(payload, np.ndarray):
            payload.setflags(write=False)
        store[(member.key, tag)] = payload


class FusedKernel:
    """Kernel of a fused producer->consumer chain.

    Runs the member kernels in dependency order inside one task;
    intermediate payloads never leave the composite, only the chain
    root's outputs do (the fused task keeps the root's key, so
    downstream consumers and terminal results are untouched).
    """

    __slots__ = ("members", "root_key")

    def __init__(self, members: tuple[Task, ...], root_key: TaskKey) -> None:
        self.members = members
        self.root_key = root_key

    def __call__(self, inputs: Mapping, task: Task) -> dict:
        store = expand_inputs(inputs)
        for member in self.members:
            _run_member(store, member)
        return {
            tag: payload
            for (key, tag), payload in store.items()
            if key == self.root_key
        }


class SuperKernel:
    """Kernel of a coarsened super-task.

    Members are independent (same topological level), so they run in
    deterministic key order; the outputs are re-bundled per outgoing
    coalesced flow according to ``pack_spec``.
    """

    __slots__ = ("members", "pack_spec")

    def __init__(
        self,
        members: tuple[Task, ...],
        pack_spec: dict[str, tuple[tuple[TaskKey, str], ...]],
    ) -> None:
        self.members = members
        self.pack_spec = pack_spec

    def __call__(self, inputs: Mapping, task: Task) -> dict:
        store = expand_inputs(inputs)
        for member in self.members:
            _run_member(store, member)
        return {
            tag: pack_payload({part: store.get(part) for part in parts})
            for tag, parts in self.pack_spec.items()
        }


class UnpackKernel:
    """Adapter for a plain task some of whose producers were
    coarsened: expands packed inputs, then defers to the original
    kernel (which keeps seeing the original key space)."""

    __slots__ = ("inner",)

    def __init__(self, inner) -> None:
        self.inner = inner

    def __call__(self, inputs: Mapping, task: Task) -> dict:
        return self.inner(expand_inputs(inputs), task)


# -- graph/build rebuilding ----------------------------------------------


def clone_task(task: Task, **overrides: Any) -> Task:
    """A copy of ``task`` with selected attributes replaced."""
    kwargs = dict(
        key=task.key, node=task.node, inputs=task.inputs, cost=task.cost,
        flops=task.flops, redundant_flops=task.redundant_flops,
        kernel=task.kernel, out_nbytes=task.out_nbytes,
        priority=task.priority, kind=task.kind,
    )
    kwargs.update(overrides)
    return Task(**kwargs)


def rebuild_graph(tasks: Iterable[Task], validate: bool = True) -> TaskGraph:
    """A fresh finalized graph over ``tasks``."""
    graph = TaskGraph()
    for task in tasks:
        graph.add(task)
    return graph.finalize(validate=validate)


def with_graph(build: Any, graph: TaskGraph) -> Any:
    """The same build context around a rewritten graph.

    Works for any (frozen) dataclass build with a ``graph`` field --
    both the stencil :class:`~repro.core.dataflow.BuildResult` and the
    PETSc one -- so structural passes stay front-end agnostic.
    """
    if dataclasses.is_dataclass(build):
        return dataclasses.replace(build, graph=graph)
    raise PassError(
        f"cannot rebuild {type(build).__name__}: expected a dataclass "
        "build with a 'graph' field"
    )


def topo_levels(graph: TaskGraph) -> dict[TaskKey, int]:
    """Longest-path level of every task (sources at 0).

    Along every edge the level strictly increases, so merging
    same-level tasks can never create a cycle -- the property the
    coarsening pass builds on.
    """
    levels: dict[TaskKey, int] = {}
    for key in graph.topological_order():
        task = graph[key]
        level = 0
        for flow in task.inputs:
            level = max(level, levels[flow.producer] + 1)
        levels[key] = level
    return levels


def terminal_outputs(graph: TaskGraph) -> set[tuple[TaskKey, str]]:
    """(key, tag) slots with no consumers -- what the backends expose
    as terminal ``results`` (the grid lives there).  Structural passes
    must keep this set bit-identical."""
    return {
        (key, tag)
        for key, tags in graph.out_tags.items()
        for tag in tags
        if not graph.consumers.get((key, tag))
    }


def sort_key(key: TaskKey) -> str:
    """Deterministic order over heterogeneous task keys."""
    return repr(key)
