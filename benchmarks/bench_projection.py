"""Section VII's projection: faster memory makes CA win without any
kernel trick.

The paper's closing argument -- exascale nodes get ~50 % more memory
bandwidth while network latency stays flat, so full-speed kernels
drain fast enough that the network binds and CA pulls ahead.  This
bench scales the Stampede2 node's memory bandwidth and watches the CA
gain appear at *ratio 1.0* (no simulated kernel), the regime the ratio
experiments emulate.
"""

from repro.analysis.tables import format_table
from repro.experiments import projection


def test_projection_faster_memory_flips_to_ca(once, show):
    points = once(projection.sweep, projection.STAMPEDE2, 64)
    show(format_table(
        projection.HEADERS, projection.rows(points),
        title="Projection: Stampede2 x64 with scaled memory bandwidth "
              "(full kernels, no ratio trick)",
    ))
    gains = [p.gain for p in points]
    # Today: base and CA within a few percent (the paper's Fig. 7).
    assert abs(gains[0]) < 0.12
    # Once the per-node drain time falls to the per-message cost scale
    # the CA advantage is decisive -- the paper's ratio-0.2 trick
    # emulates roughly the 25x point of this sweep.
    assert gains[-1] > 0.25
    assert max(gains) == gains[-1]
    # base saturates against its communication wall...
    assert points[-1].base_gflops < 1.2 * points[-2].base_gflops
    # ...while CA keeps converting bandwidth into throughput.
    assert points[-1].ca_gflops > 1.25 * points[-2].ca_gflops
