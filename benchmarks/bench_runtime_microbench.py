"""Microbenchmarks of the runtime substrate itself (wall-clock).

Unlike the figure benches (which report *virtual* time from the
machine model), these measure the real throughput of the simulator
and of the numpy stencil kernel on this host -- the numbers that
bound how large a configuration the harness can sweep.
"""

import numpy as np

from repro.core.base_parsec import build_base_graph
from repro.machine.machine import nacl
from repro.runtime.engine import Engine
from repro.stencil.kernels import StencilWeights, jacobi_update_region
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=2880, iterations=10)


def test_engine_task_throughput(benchmark, show):
    """Discrete-event engine: simulated tasks per wall-second."""
    machine = nacl(16)

    built = build_base_graph(PROBLEM, machine, tile=288, with_kernels=False)

    def _run():
        return Engine(built.graph, machine).run()

    report = benchmark.pedantic(_run, rounds=3, iterations=1)
    rate = report.tasks_run / benchmark.stats["mean"]
    show(f"engine throughput: {rate:,.0f} simulated tasks/s "
         f"({report.tasks_run} tasks, {report.messages} messages)")
    assert report.tasks_run == len(built.graph)


def test_kernel_gflops_host(benchmark, show):
    """Real numpy 5-point kernel throughput on this host."""
    ext = np.random.default_rng(0).random((1026, 1026))
    weights = StencilWeights.laplace_jacobi()
    rows = cols = slice(1, 1025)

    benchmark(jacobi_update_region, ext, weights, rows, cols)
    points = 1024 * 1024
    gflops = 9 * points / benchmark.stats["mean"] / 1e9
    show(f"host kernel: {gflops:.2f} GFLOP/s on a 1024x1024 tile "
         "(paper nodes: ~11 NaCL / ~43.5 Stampede2 with all cores)")
    assert gflops > 0.1
