"""Fig. 9: CA step-size tuning across kernel ratios.

Shape checks: the optimal step size is interior in the comm-bound
regime (too-small s communicates too often, too-large s piles up
redundant work and bursty refreshes -- "the step size needs to be
tuned"), and step size barely matters when the kernel dominates.
"""

from repro.analysis.tables import format_table
from repro.experiments import NACL, STEP_SIZES, fig9_stepsize as f9


def test_fig9_stepsize_nacl(once, show):
    points = once(f9.sweep, NACL, (16,))
    rows = []
    for ratio in sorted({p.ratio for p in points}):
        row = [16, ratio]
        for s in STEP_SIZES:
            row.append(next(p.gflops for p in points
                            if p.ratio == ratio and p.steps == s))
        rows.append(tuple(row))
    show(format_table(
        f9.HEADERS, rows,
        title="Fig. 9 -- NaCL, 16 nodes (GFLOP/s per CA step size)",
    ))
    # Comm-bound regime (smallest ratio): the step size matters a lot.
    bound = {p.steps: p.gflops for p in points if p.ratio == 0.2}
    assert max(bound.values()) / min(bound.values()) > 1.10
    # s=5 communicates 3x more often than s=15: it should not win.
    opt = f9.optimal_step(points, nodes=16, ratio=0.2)
    assert opt.steps > 5, f"optimal step {opt.steps} should exceed the smallest"
    # Kernel-bound regime (ratio 0.8): step size is nearly irrelevant.
    calm = {p.steps: p.gflops for p in points if p.ratio == 0.8}
    assert max(calm.values()) / min(calm.values()) < 1.10


def test_fig9_redundant_work_grows_with_steps(once, show):
    """Sanity on the tradeoff itself: bigger s means more replicated
    work (and fewer messages) -- the two sides of PA1's bargain."""
    from repro.core.runner import run

    from repro.stencil.problem import JacobiProblem

    # 80 iterations so every step size completes several supersteps
    # (with too few iterations all step sizes degenerate to a single
    # refresh and the message counts tie).
    problem = JacobiProblem(n=5760, iterations=80)

    def _sweep():
        fractions = {}
        messages = {}
        for s in (5, 15, 40):
            res = run(
                problem, impl="ca-parsec", machine=NACL.machine(16),
                tile=288, steps=s, mode="simulate",
            )
            fractions[s] = res.redundant_fraction
            messages[s] = res.messages
        return fractions, messages

    fractions, messages = once(_sweep)
    show("redundant-work fraction by step size: "
         + ", ".join(f"s={s}: {f:.2%}" for s, f in fractions.items()),
         f"messages by step size: {messages}")
    assert fractions[5] < fractions[15] < fractions[40]
    assert messages[5] > messages[15] > messages[40]
