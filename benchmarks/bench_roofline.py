"""Section VI-A: roofline effective-peak brackets for the stencil.

Paper: arithmetic intensity 0.37-0.56 FLOP/B gives 14.5-21.9 GFLOP/s
on NaCL and 63.8-96.6 GFLOP/s on Stampede2.
"""

from repro.analysis.tables import format_table
from repro.experiments import roofline_exp


def test_roofline_brackets(once, show):
    rows = once(roofline_exp.rows)
    show(
        format_table(roofline_exp.HEADERS, rows, title="Roofline brackets (modelled)"),
        f"paper brackets: {roofline_exp.PAPER}",
        f"max relative error vs paper: {roofline_exp.max_relative_error():.1%}",
    )
    # Within 5%: the paper multiplies rounded bandwidths (39.1/172.5 GB/s).
    assert roofline_exp.max_relative_error() < 0.05
