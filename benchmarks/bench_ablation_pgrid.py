"""Ablation: node-grid shape (the paper's surface-to-volume argument).

Section V: "the nodes during runs were arranged into square compute
grid and the data tiles were allocated in a 2D block fashion to
exploit the surface-to-volume ratio effect."  This bench quantifies
the claim by running the same problem on a square 4x4 node grid vs a
1x16 strip arrangement: strips exchange the full grid edge per seam
(more ghost bytes and, here, more messages per node pair), and the
closed-form surface-to-volume metric predicts the ordering.
"""

from repro.analysis.tables import format_table
from repro.core.analytic import surface_to_volume
from repro.core.runner import run
from repro.core.spec import StencilSpec
from repro.distgrid.partition import ProcessGrid
from repro.experiments import NACL
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=5760, iterations=10)
MACHINE = NACL.machine(16)
SHAPES = (ProcessGrid(4, 4), ProcessGrid(2, 8), ProcessGrid(1, 16))


def _row(pgrid: ProcessGrid, ratio: float):
    res = run(PROBLEM, impl="base-parsec", machine=MACHINE, tile=288,
              ratio=ratio, mode="simulate", pgrid=pgrid)
    spec = StencilSpec.create(PROBLEM, nodes=16, tile=288, steps=1, pgrid=pgrid)
    return (
        f"{pgrid.rows}x{pgrid.cols}",
        surface_to_volume(spec),
        res.message_bytes / 1e6,
        res.gflops,
    )


def test_pgrid_ablation(once, show):
    rows = [(_row(p, 0.2) if p != SHAPES[-1] else once(_row, p, 0.2))
            for p in SHAPES]
    show(format_table(
        ("node grid", "surface/volume", "ghost MB", "GFLOP/s (r=0.2)"),
        rows, title="Ablation: node-grid shape, 16 NaCL nodes, base version",
    ))
    s2v = [r[1] for r in rows]
    ghost = [r[2] for r in rows]
    perf = [r[3] for r in rows]
    # Surface-to-volume worsens monotonically from square to strip...
    assert s2v == sorted(s2v)
    # ...and ghost traffic follows it.
    assert ghost == sorted(ghost)
    # The square arrangement is fastest in the comm-bound regime.
    assert perf[0] == max(perf)
