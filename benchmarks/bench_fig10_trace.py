"""Fig. 10: one node's execution trace, base vs CA (NaCL, 16 nodes,
comm-bound kernel ratio).

Reproduces the paper's three profiling findings: (a) CA achieves
higher worker occupancy, (b) CA's kernels are individually *slower*
(extra ghost copies; the paper measured median 153 ms vs 136 ms),
(c) the CA run still finishes sooner.  Also renders both traces as
ASCII Gantt charts.
"""

from repro.analysis.tables import format_table
from repro.experiments import fig10_trace as f10


def test_fig10_trace_profile(once, show):
    exp = once(f10.capture)
    comp = exp.comparison()
    show(
        format_table(f10.HEADERS, f10.rows(exp),
                     title=f"Fig. 10 -- profiled node 0 (NaCL, {f10.NODES} nodes, ratio {f10.RATIO})"),
        f"CA kernel slowdown (paper: 153/136 = 1.12x): {comp['ca_kernel_slowdown']:.3f}x",
        f"CA end-to-end speedup (paper: ~1.14x): {comp['ca_speedup']:.3f}x",
        "",
        "base trace:",
        exp.gantt("base", width=96),
        "",
        "CA trace:",
        exp.gantt("ca", width=96),
    )
    # (a) higher occupancy for CA.
    assert comp["ca_occupancy"] >= comp["base_occupancy"] - 1e-9
    # (b) CA boundary kernels are slower on average (deep-ghost copies
    # at refresh iterations; the paper reports 153 vs 136 ms medians,
    # our copies concentrate in the refresh tasks so the *mean* moves).
    from repro.analysis.occupancy import occupancy_report
    workers = exp.base.machine.node.compute_cores
    b = occupancy_report(exp.base.trace, f10.PROFILE_NODE, workers)
    c = occupancy_report(exp.ca.trace, f10.PROFILE_NODE, workers)
    assert c.mean_boundary_s > b.mean_boundary_s
    # (c) CA finishes no later than base.
    assert comp["ca_speedup"] >= 1.0
