"""Ablation: ready-queue policy (DESIGN.md #2).

Priority scheduling (boundary-tiles-first) releases ghost messages
into the network as early as possible; FIFO/LIFO serve tasks in
enablement order.  The difference shows in the comm-bound regime.
"""

from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.experiments import NACL
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=5760, iterations=12)
MACHINE = NACL.machine(16)
POLICIES = ("priority", "fifo", "lifo")


def _sweep(ratio: float) -> dict[str, float]:
    out = {}
    for policy in POLICIES:
        res = run(PROBLEM, impl="base-parsec", machine=MACHINE, tile=288,
                  ratio=ratio, mode="simulate", policy=policy)
        out[policy] = res.gflops
    return out


def test_scheduler_ablation(once, show):
    comm_bound = once(_sweep, 0.2)
    kernel_bound = _sweep(1.0)
    rows = [
        (policy, kernel_bound[policy], comm_bound[policy]) for policy in POLICIES
    ]
    show(format_table(
        ("Policy", "ratio=1.0 GFLOP/s", "ratio=0.2 GFLOP/s"),
        rows, title="Ablation: scheduler policy",
    ))
    # All policies complete the same work; results stay within a sane
    # band of each other (the graph is regular), with priority at least
    # matching FIFO when communication matters.
    assert comm_bound["priority"] >= 0.95 * comm_bound["fifo"]
    for policy in POLICIES:
        assert kernel_bound[policy] > 0


def test_boundary_priority_flag(once, show):
    """Disabling the boundary-first bias must not break anything and
    documents its (regime-dependent) effect."""
    on = once(run, PROBLEM, impl="ca-parsec", machine=MACHINE, tile=288,
              steps=12, ratio=0.2, mode="simulate", boundary_priority=True)
    off = run(PROBLEM, impl="ca-parsec", machine=MACHINE, tile=288, steps=12,
              ratio=0.2, mode="simulate", boundary_priority=False)
    show(f"boundary-first {on.gflops:.0f} GF vs unbiased {off.gflops:.0f} GF "
         f"({on.gflops / off.gflops - 1:+.1%})")
    assert on.messages == off.messages
