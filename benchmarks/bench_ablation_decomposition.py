"""Ablation: tile-level decomposition (DESIGN.md #5).

Why does PaRSEC need tiles *within* a node's block at all?  One giant
tile per node has perfect surface-to-volume but only one task per
iteration -- the node's workers starve.  This reproduces the
motivation behind Fig. 6's sweep from the other side.
"""

from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.experiments import NACL
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=5760, iterations=10)
MACHINE = NACL.machine(16)


def test_decomposition_ablation(once, show):
    # 5760 over a 4x4 node grid -> 1440 rows per node: one tile per
    # node (1440), a handful (480), the tuned size (288), tiny (72).
    tiles = (1440, 480, 288, 72)
    rows = []
    for tile in tiles:
        res = (once(run, PROBLEM, impl="base-parsec", machine=MACHINE,
                    tile=tile, mode="simulate")
               if tile == 288 else
               run(PROBLEM, impl="base-parsec", machine=MACHINE,
                   tile=tile, mode="simulate"))
        tiles_per_node = (1440 // tile) ** 2
        rows.append((tile, tiles_per_node, res.gflops, res.messages))
    show(format_table(
        ("Tile", "tiles/node", "GFLOP/s", "messages"),
        rows, title="Ablation: intra-node decomposition (16 NaCL nodes)",
    ))
    by_tile = {r[0]: r[2] for r in rows}
    # One tile per node starves 11 workers: much slower than tuned.
    assert by_tile[1440] < 0.25 * by_tile[288]
    # The tuned size beats both extremes.
    assert by_tile[288] >= by_tile[72]
    assert by_tile[288] > by_tile[1440]
