"""Fig. 7: strong-scaling speedup over the 1-node base-PaRSEC run.

Shape checks: all three implementations scale with node count; the
two PaRSEC versions deliver ~2x the PETSc throughput everywhere (the
paper's headline); base and CA are nearly indistinguishable with the
full-speed (memory-bound) kernel.
"""

from repro.analysis.tables import format_table
from repro.experiments import NACL, NODE_COUNTS, STAMPEDE2, fig7_strong_scaling as f7


def _check(setup, show, node_counts=NODE_COUNTS):
    points = f7.sweep(setup, node_counts)
    rows = []
    for nodes in node_counts:
        by_impl = {p.impl: p for p in points if p.nodes == nodes}
        rows.append((
            nodes,
            by_impl["petsc"].speedup,
            by_impl["base-parsec"].speedup,
            by_impl["ca-parsec"].speedup,
        ))
    show(format_table(
        f7.HEADERS, rows,
        title=f"Fig. 7 -- {setup.name}: speedup over 1-node base-PaRSEC "
              "(paper: PaRSEC ~2x PETSc, base ~= CA)",
    ))
    ratios = f7.parsec_over_petsc(points)
    for r in ratios:
        assert 1.6 < r < 2.6, f"PaRSEC/PETSc ratio {r:.2f} far from the paper's 2x"
    for nodes in node_counts:
        by_impl = {p.impl: p for p in points if p.nodes == nodes}
        base, ca = by_impl["base-parsec"], by_impl["ca-parsec"]
        # "almost indistinguishable" in the paper; our model lets CA
        # trail by a few percent at 64 nodes (redundant work + bursty
        # refreshes) -- see EXPERIMENTS.md.
        assert abs(base.gflops - ca.gflops) / base.gflops < 0.12, (
            "base and CA should be nearly indistinguishable at full kernel speed"
        )
    # Monotone scaling for every implementation.
    for impl in ("petsc", "base-parsec", "ca-parsec"):
        series = [p.speedup for p in points if p.impl == impl]
        assert series == sorted(series)
    return points


def test_fig7_strong_scaling_nacl(once, show):
    once(lambda: _check(NACL, show))


def test_fig7_strong_scaling_stampede2(once, show):
    once(lambda: _check(STAMPEDE2, show))
