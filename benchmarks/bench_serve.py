"""The serving layer pays for itself: warm pools beat cold per-request
runs, and the result cache serves repeats for free.

Three measurements over a small-solve mix (the workload the service
exists for -- many modest solves, heavy repetition):

* **warm vs cold throughput** -- the same request stream through a
  persistent :class:`~repro.serve.SolverService` (warm executors,
  batching, result cache) against one cold :func:`repro.core.runner.run`
  per request.  The acceptance bar is 3x.
* **cache hit executes nothing** -- a repeated identical request is
  served with *zero* task executions, proven by the
  ``tasks_executed_total`` counter, not by timing.
* **multi-tenant traffic** -- two tenants with different priorities
  through one service; records queue/batch/fairness statistics.

Outcomes append to ``BENCH_serve.json`` at the repo root so the
serving-performance trajectory accumulates across commits
(``repro stats --check BENCH_serve.json --section ...`` gates it).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.runner import run
from repro.machine.machine import nacl
from repro.serve import (
    ServiceConfig,
    SolveRequest,
    SolverClient,
    SolverService,
)
from repro.stencil.problem import JacobiProblem

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_serve.json"

MACHINE = nacl(4)
SOLVE = dict(impl="base-parsec", tile=16, ratio=1.0)
N, ITERATIONS = 64, 6

#: The small-solve mix: 3 distinct problems, 24 requests (each problem
#: asked for 8 times -- the repetition a service workload actually has).
UNIQUE = 3
REQUESTS = 24


def _emit(key: str, record: dict) -> None:
    try:
        doc = json.loads(RECORD_PATH.read_text())
    except (OSError, ValueError):
        doc = {}
    record["unix_time"] = round(time.time(), 3)
    doc[key] = record
    RECORD_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _problems() -> list[JacobiProblem]:
    return [
        JacobiProblem(n=N, iterations=ITERATIONS + k) for k in range(UNIQUE)
    ]


def _request_stream() -> list[JacobiProblem]:
    problems = _problems()
    return [problems[i % UNIQUE] for i in range(REQUESTS)]


def _waves() -> list[list[JacobiProblem]]:
    """The stream arrives in waves of the unique mix: later waves are
    the repetition a real request stream exhibits."""
    stream = _request_stream()
    return [stream[i:i + UNIQUE] for i in range(0, REQUESTS, UNIQUE)]


def _cold_seconds() -> float:
    """One fully cold run() per request: graph build, pool spin-up and
    tear-down every time -- the per-request overhead the service
    amortises."""
    t0 = time.perf_counter()
    for wave in _waves():
        for problem in wave:
            run(problem, machine=MACHINE, mode="execute", backend="threads",
                jobs=2, **SOLVE)
    return time.perf_counter() - t0


def _warm_seconds(tmp_path: Path) -> tuple[float, dict]:
    config = ServiceConfig(workers=2, cache=tmp_path, tenant_limit=None)
    with SolverService(config) as service:
        client = SolverClient(service, tenant="bench")
        t0 = time.perf_counter()
        for wave in _waves():
            futures = [
                client.submit(problem, machine=MACHINE, backend="threads",
                              jobs=2, **SOLVE)
                for problem in wave
            ]
            for future in futures:
                future.result(timeout=300)
        elapsed = time.perf_counter() - t0
        snap = service.metrics.snapshot()
        counters = {
            "cache_hits": snap.counter("serve_cache_hits_total"),
            "warm_starts": snap.counter("serve_pool_warm_starts_total"),
            "cold_starts": snap.counter("serve_pool_cold_starts_total"),
            "batches": snap.counter("serve_batches_total"),
            "dedup": snap.counter("serve_dedup_total"),
        }
    return elapsed, counters


def test_warm_pool_throughput_vs_cold(tmp_path, show):
    cold_s = _cold_seconds()
    warm_s, counters = _warm_seconds(tmp_path)
    cold_rps = REQUESTS / cold_s
    warm_rps = REQUESTS / warm_s
    speedup = warm_rps / cold_rps
    show(
        f"small-solve mix: {REQUESTS} requests over {UNIQUE} problems "
        f"({N}^2 x ~{ITERATIONS} iterations)",
        f"  cold run() per request : {cold_s:.3f} s  ({cold_rps:6.1f} req/s)",
        f"  warm service           : {warm_s:.3f} s  ({warm_rps:6.1f} req/s)",
        f"  speedup                : {speedup:.1f}x   "
        f"(hits {counters['cache_hits']:.0f}, warm {counters['warm_starts']:.0f}, "
        f"cold {counters['cold_starts']:.0f}, dedup {counters['dedup']:.0f})",
    )
    assert speedup >= 3.0, (
        f"warm-pool throughput only {speedup:.2f}x cold; the acceptance "
        "bar is 3x on the small-solve mix"
    )
    _emit("throughput", {
        "requests": REQUESTS,
        "unique_problems": UNIQUE,
        "problem_n": N,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(speedup, 2),
        **{k: round(v, 1) for k, v in counters.items()},
    })


def test_cache_hit_executes_zero_tasks(tmp_path, show):
    problem = _problems()[0]
    request = SolveRequest(problem=problem, machine=MACHINE,
                           backend="threads", jobs=2, **SOLVE)
    with SolverService(ServiceConfig(workers=1, cache=tmp_path)) as service:
        first = service.submit(request).result(timeout=300)
        before = service.metrics.snapshot().counter("tasks_executed_total")
        repeat = service.submit(request).result(timeout=300)
        after = service.metrics.snapshot().counter("tasks_executed_total")
    assert not first.cached and repeat.cached
    assert np.array_equal(first.grid, repeat.grid)
    assert after == before, "a cache hit must execute zero tasks"
    show(
        f"repeat request: cached={repeat.cached}, task counter "
        f"{before:.0f} -> {after:.0f} (zero executions on the hit)"
    )
    _emit("cache_hit", {
        "tasks_first": before,
        "tasks_delta_on_hit": after - before,
        "hit_rate": 0.5,
    })


def _stream_seconds(lifecycle: bool, reps: int = 3,
                    sampling: float | None = None) -> float:
    """Best-of-``reps`` wall time for the full request stream through
    a cache-less service (every request executes, so the lifecycle
    span path is exercised end to end on each one)."""
    from repro.obs.alerts import default_rules

    best = float("inf")
    for _ in range(reps):
        config = ServiceConfig(workers=2, cache=False, tenant_limit=None,
                               lifecycle=lifecycle,
                               sampling_interval_s=sampling,
                               alert_rules=(default_rules()
                                            if sampling is not None else None))
        with SolverService(config) as service:
            client = SolverClient(service, tenant="bench")
            t0 = time.perf_counter()
            for wave in _waves():
                futures = [
                    client.submit(problem, machine=MACHINE,
                                  backend="threads", jobs=2, **SOLVE)
                    for problem in wave
                ]
                for future in futures:
                    future.result(timeout=300)
            best = min(best, time.perf_counter() - t0)
    return best


def test_lifecycle_tracing_overhead(show):
    """The always-on lifecycle tracer (spans + SLO histograms + flight
    recorder) must cost <3% against the same service with tracing
    detached -- the budget that justifies leaving it on."""
    detached_s = _stream_seconds(lifecycle=False)
    traced_s = _stream_seconds(lifecycle=True)
    overhead = traced_s / detached_s - 1.0
    show(
        f"lifecycle tracing overhead ({REQUESTS} executed requests, "
        f"best of 3):",
        f"  detached : {detached_s:.3f} s",
        f"  traced   : {traced_s:.3f} s",
        f"  overhead : {100 * overhead:+.2f}%  (budget +3%)",
    )
    # 3% relative plus a 30 ms absolute floor so a sub-second stream's
    # scheduling jitter cannot fail the gate spuriously.
    assert traced_s <= detached_s * 1.03 + 0.03, (
        f"lifecycle tracing costs {100 * overhead:.1f}% "
        f"({detached_s:.3f}s -> {traced_s:.3f}s); the budget is 3%"
    )
    _emit("lifecycle_overhead", {
        "requests": REQUESTS,
        "detached_seconds": round(detached_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_pct": round(100 * overhead, 2),
    })


def test_sampling_overhead(show):
    """The telemetry sampler + alert engine (20 Hz snapshots, default
    rules evaluated on every sample) must cost <3% against the same
    service with sampling disabled -- and ``sampling_interval_s=None``
    must build nothing at all, so the idle path pays nothing."""
    plain_s = _stream_seconds(lifecycle=True, sampling=None)
    sampled_s = _stream_seconds(lifecycle=True, sampling=0.05)
    overhead = sampled_s / plain_s - 1.0
    show(
        f"telemetry sampling overhead ({REQUESTS} executed requests, "
        f"best of 3, 50 ms interval + default alert rules):",
        f"  sampling off : {plain_s:.3f} s",
        f"  sampling on  : {sampled_s:.3f} s",
        f"  overhead     : {100 * overhead:+.2f}%  (budget +3%)",
    )
    # Same gate shape as the lifecycle tracer: 3% relative plus a 30 ms
    # absolute floor against sub-second scheduling jitter.
    assert sampled_s <= plain_s * 1.03 + 0.03, (
        f"telemetry sampling costs {100 * overhead:.1f}% "
        f"({plain_s:.3f}s -> {sampled_s:.3f}s); the budget is 3%"
    )
    _emit("sampling_overhead", {
        "requests": REQUESTS,
        "interval_s": 0.05,
        "plain_seconds": round(plain_s, 4),
        "sampled_seconds": round(sampled_s, 4),
        "overhead_pct": round(100 * overhead, 2),
    })


def test_multitenant_traffic(tmp_path, show):
    """Two tenants, interleaved submission, one service: records the
    fairness and batching statistics of a mixed stream."""
    problems = _problems()
    config = ServiceConfig(workers=2, cache=tmp_path, tenant_limit=2)
    with SolverService(config) as service:
        alice = SolverClient(service, tenant="alice", priority=1)
        bob = SolverClient(service, tenant="bob")
        futures = []
        for i in range(REQUESTS):
            client = alice if i % 2 == 0 else bob
            futures.append(client.submit(
                problems[i % UNIQUE], machine=MACHINE, backend="threads",
                jobs=2, **SOLVE,
            ))
        outcomes = [f.result(timeout=300) for f in futures]
        snap = service.metrics.snapshot()
    assert len(outcomes) == REQUESTS
    inflight = snap.labelled("serve_tenant_inflight")
    peaks = {
        dict(ls)["tenant"]: state["max"] for ls, state in inflight.items()
    }
    batches = snap.counter("serve_batches_total")
    batched = snap.counter("serve_batched_jobs_total")
    show(
        f"two-tenant stream: {REQUESTS} requests, per-tenant in-flight "
        f"peaks {peaks} (cap 2), "
        f"{batches:.0f} batches ({batched / max(batches, 1):.1f} jobs/batch)",
    )
    assert all(peak <= 2 for peak in peaks.values())
    _emit("multitenant", {
        "requests": REQUESTS,
        "tenant_peaks": {k: round(v, 1) for k, v in sorted(peaks.items())},
        "batches": round(batches, 1),
        "jobs_per_batch": round(batched / max(batches, 1), 2),
        "cache_hits": round(snap.counter("serve_cache_hits_total"), 1),
    })
