"""The autotuner recovers the paper's hand-picked operating points.

Fig. 6 fixed the tile size per machine (200-300 on NaCL, 400-2000 on
Stampede2) by exhaustive single-node sweeps; Fig. 9 argued the CA step
size "needs to be tuned".  These benches hand :func:`repro.tuning.tune`
the same problems *without* those answers and check it finds them
within its run budget -- the subsystem's whole reason to exist.

Each test appends its outcome to ``BENCH_tuning.json`` at the repo
root so the tuning-performance trajectory accumulates across commits.
"""

import json
import time
from pathlib import Path

from repro.core.runner import run
from repro.experiments import NACL, STAMPEDE2, fig6_tilesize
from repro.experiments.common import STEP_SIZES, full_mode
from repro.tuning import SearchSpace, format_tuning_report, tune

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_tuning.json"


def _emit(key: str, record: dict) -> None:
    try:
        doc = json.loads(RECORD_PATH.read_text())
    except (OSError, ValueError):
        doc = {}
    record["unix_time"] = round(time.time(), 3)
    doc[key] = record
    RECORD_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _recover_fig6(setup, once, show, budget=24):
    problem = setup.tuning_problem()
    machine = setup.machine(1)
    # The tuner gets the same tile axis the paper swept in Fig. 6 --
    # but not which of them wins.
    tiles = (fig6_tilesize.FULL_TILES if full_mode()
             else fig6_tilesize.SCALED_TILES)[setup.name]
    space = SearchSpace(tiles=tiles, require_divisible=False)
    result = once(
        tune, problem, impl="base-parsec", machine=machine,
        budget=budget, space=space, cache=False,
    )
    show(format_tuning_report(result))
    lo, hi = fig6_tilesize.PAPER_OPTIMUM[setup.name]
    assert lo <= result.winner.tile <= hi, (
        f"tuned tile {result.winner.tile} outside the paper's "
        f"{setup.name} optimum range {lo}-{hi}"
    )
    assert result.runs_used <= budget
    _emit(f"fig6_{setup.name.lower()}", {
        "problem_n": problem.shape[0],
        "budget": budget,
        "runs_used": result.runs_used,
        "winner_tile": result.winner.tile,
        "winner_gflops": result.winner_gflops,
        "paper_range": [lo, hi],
    })


def test_tuner_recovers_fig6_optimum_nacl(once, show):
    _recover_fig6(NACL, once, show)


def test_tuner_recovers_fig6_optimum_stampede2(once, show):
    _recover_fig6(STAMPEDE2, once, show)


def test_tuner_recovers_fig9_step_behaviour(once, show):
    """Pin the tile to the paper's (288 on NaCL, 16 nodes, comm-heavy
    ratio 0.2) and let the tuner search only the step axis; its winner
    must perform within 2% of the exhaustive Fig. 9 sweep's argmax."""
    setup = NACL
    ratio = 0.2
    problem = setup.problem()
    machine = setup.machine(16)
    reference = {
        s: run(problem, impl="ca-parsec", machine=machine,
               tile=setup.tile, steps=s, ratio=ratio).gflops
        for s in STEP_SIZES
    }
    space = SearchSpace(tiles=(setup.tile,), steps=STEP_SIZES)
    result = once(
        tune, problem, impl="ca-parsec", machine=machine, budget=12,
        space=space, run_kwargs={"ratio": ratio}, cache=False,
    )
    show(format_tuning_report(result))
    best_s = max(reference, key=reference.get)
    show(f"exhaustive Fig. 9 sweep: best s={best_s} "
         f"({reference[best_s]:.2f} GFLOP/s); "
         f"tuner picked s={result.winner.steps}")
    assert result.winner.steps in STEP_SIZES
    assert reference[result.winner.steps] >= 0.98 * reference[best_s], (
        f"tuned s={result.winner.steps} "
        f"({reference[result.winner.steps]:.2f} GFLOP/s) is more than 2% "
        f"below the exhaustive optimum s={best_s} "
        f"({reference[best_s]:.2f} GFLOP/s)"
    )
    _emit("fig9_nacl_16n_r02", {
        "budget": 12,
        "runs_used": result.runs_used,
        "winner_steps": result.winner.steps,
        "winner_gflops": result.winner_gflops,
        "exhaustive_best_steps": best_s,
        "exhaustive_best_gflops": reference[best_s],
    })
