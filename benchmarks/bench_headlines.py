"""The abstract's headline numbers, recomputed end to end.

"2X speedup over the standard SpMV solution implemented in PETSc, and
... the CA-PaRSEC version achieved up to 57% and 33% speedup over
base-PaRSEC implementation on NaCL and Stampede2 respectively."
"""

from repro.analysis.tables import format_table
from repro.experiments import headline


def test_headlines(once, show):
    h = once(headline.compute)
    show(format_table(headline.HEADERS, headline.rows(h), title="Headline claims"))
    assert 1.6 < h.parsec_over_petsc_nacl < 2.6
    assert 1.6 < h.parsec_over_petsc_s2 < 2.6
    assert 0.40 <= h.ca_gain_nacl <= 0.75  # paper: +57%
    assert 0.20 <= h.ca_gain_s2 <= 0.50  # paper: +33%
