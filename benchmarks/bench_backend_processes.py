"""Multiprocess execution: base vs CA over real IPC halo exchange.

This bench runs the paper's headline claim end to end with *nothing
modelled*: four OS processes, one per simulated cluster node, exchange
node-boundary halos as real pickled messages over pipes.  The
decomposition mirrors the paper's regime -- node-sized tiles on a 1D
process grid, as with the 288/864-wide tiles on NaCL/Stampede2 -- so
each node boundary is one producer and PA1's message coalescing is
exact.  Three findings are reported:

* the measured inter-process message count per implementation, lined
  up against the simulator's predicted count -- equal by construction
  (both count one message per (producer, tag, destination node));
* the base-vs-CA message ratio: exactly s when s divides the
  iteration count, the communication-avoiding trade made physical;
* wall-clock time, payload vs wire bytes and per-edge traffic, so the
  halo pattern of the run is visible, not just the totals.

The message-count assertions hold on any host (they are counting, not
timing).  Wall-clock rows are informational: on a container with
fewer cores than processes the absolute times mean little.
"""

from __future__ import annotations

import os

from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.distgrid.partition import ProcessGrid
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem

FULL = bool(os.environ.get("REPRO_FULL"))
N = 480 if FULL else 240
TILE = N  # node-sized tiles: one producer per node boundary
ITERATIONS = 12
STEPS = 4
PROCS = 4
PGRID = ProcessGrid(PROCS, 1)
HOST_CORES = os.cpu_count() or 1


def _run(problem: JacobiProblem, impl: str, **kwargs):
    return run(
        problem,
        impl=impl,
        machine=nacl(PROCS),
        backend="processes",
        procs=PROCS,
        jobs=max(1, min(2, HOST_CORES // PROCS + 1)),
        pgrid=PGRID,
        **kwargs,
    )


def test_backend_processes_message_avoidance(once, show):
    """CA exchanges exactly s x fewer real messages than base."""
    problem = JacobiProblem(n=N, iterations=ITERATIONS)

    def measure():
        out = {}
        for impl, kwargs in (
            ("base-parsec", {"tile": TILE}),
            ("ca-parsec", {"tile": TILE, "steps": STEPS}),
        ):
            real = _run(problem, impl, **kwargs)
            sim = run(problem, impl=impl, machine=nacl(PROCS), pgrid=PGRID,
                      **kwargs)
            out[impl] = (real, sim)
        return out

    results = once(measure)

    rows = []
    for impl, (real, sim) in results.items():
        rows.append((
            impl,
            real.messages,
            sim.messages,
            f"{real.message_bytes / 1e6:.2f}",
            f"{real.engine.wire_bytes / 1e6:.2f}",
            f"{real.elapsed * 1e3:.1f}",
            f"{real.occupancy():.2f}",
        ))
    show(format_table(
        ("impl", "real msgs", "model msgs", "payload MB", "wire MB",
         "wall ms", "occ"),
        rows,
        title=f"processes backend, {N}^2 x {ITERATIONS} iters, tile {TILE}, "
              f"{PROCS} node processes (1D), steps={STEPS}",
    ))

    for impl, (real, sim) in results.items():
        # Counting, not timing: the measured IPC traffic must equal the
        # simulator's census of remote edges exactly.
        assert real.messages == sim.messages, (
            f"{impl}: measured {real.messages} inter-process messages, "
            f"model predicted {sim.messages}"
        )
        assert real.messages > 0
        # The wire carries pickle framing on top of the declared payload.
        assert real.engine.wire_bytes >= real.message_bytes

    base_msgs = results["base-parsec"][0].messages
    ca_msgs = results["ca-parsec"][0].messages
    show(f"base sends {base_msgs / ca_msgs:.2f}x the messages of CA "
         f"(steps={STEPS})")
    # s divides the iteration count and boundaries are one tile wide,
    # so PA1's coalescing is exact.
    assert base_msgs == STEPS * ca_msgs, (
        f"message ratio {base_msgs / ca_msgs:.2f}, expected exactly {STEPS}x"
    )

    import numpy as np

    reference = problem.reference_solution()
    for impl, (real, _sim) in results.items():
        assert np.max(np.abs(real.grid - reference)) < 1e-9, (
            f"{impl} grid diverged from the reference solver"
        )


def test_backend_processes_by_node(once, show):
    """Per-(src, dst) traffic table: the halo pattern made visible."""
    problem = JacobiProblem(n=N, iterations=ITERATIONS)

    def measure():
        return _run(problem, "ca-parsec", tile=TILE, steps=STEPS)

    result = once(measure)
    report = result.engine
    rows = [
        (f"{src} -> {dst}", msgs, f"{nbytes / 1e3:.1f}")
        for (src, dst), (msgs, nbytes) in sorted(report.by_pair.items())
    ]
    show(format_table(
        ("edge", "messages", "payload kB"),
        rows,
        title=f"ca-parsec inter-process traffic, {PROCS} processes",
    ))
    # On a 1D chain only node neighbours talk, and each pair's halo
    # traffic is symmetric.
    assert set(report.by_pair) == {
        (a, b) for a in range(PROCS) for b in (a - 1, a + 1)
        if 0 <= b < PROCS
    }
    for (src, dst), (msgs, _) in report.by_pair.items():
        assert report.by_pair[(dst, src)][0] == msgs, (
            f"asymmetric halo traffic between nodes {src} and {dst}"
        )
