"""Ablation: communication/computation overlap (DESIGN.md #1).

Compares the PaRSEC configuration (cores-1 workers plus a dedicated
communication thread) against blocking worker-side communication (all
cores compute, each paying send/receive overheads inline), for both
base and CA graphs.

What the model shows -- and this bench documents:

* kernel-bound (ratio 1.0, the paper's untuned regime): overlap and
  blocking are within a few percent; the comm thread mostly costs its
  reserved core.
* comm-bound (small ratio): the *single* comm thread serializes the
  per-message software overhead and becomes the bottleneck -- overlap
  alone cannot remove per-message cost, which is precisely why the
  paper adds communication *avoiding* on top of the overlapping
  runtime.  CA recovers the loss (and helps the blocking flavour
  too): avoiding beats hiding once messages dominate.
"""

from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.experiments import NACL
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=5760, iterations=12)
MACHINE = NACL.machine(16)


def _grid(ratio: float) -> dict[str, float]:
    out = {}
    for impl, steps in (("base-parsec", None), ("ca-parsec", 12)):
        for overlap in (True, False):
            kwargs = {"steps": steps} if steps else {}
            res = run(PROBLEM, impl=impl, machine=MACHINE, tile=288,
                      ratio=ratio, mode="simulate", overlap=overlap, **kwargs)
            out[f"{impl}/{'overlap' if overlap else 'blocking'}"] = res.gflops
    return out


def test_overlap_ablation(once, show):
    calm = _grid(1.0)
    bound = once(_grid, 0.2)
    rows = [
        (cfg, calm[cfg], bound[cfg]) for cfg in sorted(calm)
    ]
    show(format_table(
        ("Configuration", "ratio=1.0 GFLOP/s", "ratio=0.2 GFLOP/s"),
        rows, title="Ablation: comm thread (overlap) vs blocking workers",
    ))
    # Kernel-bound: the two configurations are close (comm negligible;
    # the comm thread costs about its reserved core, 1/12).
    assert abs(calm["base-parsec/overlap"] - calm["base-parsec/blocking"]) < (
        0.15 * calm["base-parsec/blocking"]
    )
    # Comm-bound: the single comm thread serializes per-message cost.
    assert bound["base-parsec/blocking"] > bound["base-parsec/overlap"]
    # Communication *avoiding* rescues the overlapped runtime...
    assert bound["ca-parsec/overlap"] > 2 * bound["base-parsec/overlap"]
    # ...and still helps when communication is blocking.
    assert bound["ca-parsec/blocking"] > bound["base-parsec/blocking"]
