"""Table I: STREAM bandwidths of the two machine models (MB/s).

Regenerates all sixteen cells of the paper's Table I from the machine
models and asserts they match the paper (the models are calibrated to
it; this closes the loop), then measures a real numpy STREAM on the
current host for comparison.
"""

from repro.analysis.tables import format_table
from repro.experiments import table1_stream
from repro.machine.stream import run_host


def test_table1_stream_model(once, show):
    rows = once(table1_stream.rows)
    show(
        format_table(table1_stream.HEADERS, rows, title="Table I (modelled, MB/s)"),
        format_table(table1_stream.HEADERS, table1_stream.paper_rows(),
                     title="Table I (paper, MB/s)"),
        f"max relative error: {table1_stream.max_relative_error():.2e}",
    )
    assert table1_stream.max_relative_error() < 1e-6


def test_stream_host_measurement(benchmark, show):
    """Real STREAM COPY/SCALE/ADD/TRIAD on this host (numpy)."""
    result = benchmark.pedantic(
        run_host, kwargs={"elements": 2_000_000, "repeats": 3}, rounds=3, iterations=1
    )
    show(format_table(table1_stream.HEADERS, [result.as_row()],
                      title="This host (measured, MB/s)"))
    assert result.copy > 0
