"""Fig. 5: NetPIPE bandwidth vs message size for both interconnects.

Prints the fraction-of-theoretical-peak series for NaCL (32 Gb/s IB
QDR) and Stampede2 (100 Gb/s Omni-Path) and checks the quoted numbers:
effective peaks ~27 / ~86 Gb/s, and the CA message-aggregation jump
from ~20 % to ~70 % of peak bandwidth (conclusion section).
"""

from repro.analysis.tables import format_table
from repro.experiments import NACL, fig5_netpipe


def test_fig5_netpipe_curves(once, show):
    rows = once(fig5_netpipe.rows)
    show(format_table(fig5_netpipe.HEADERS, rows, title="Fig. 5 (modelled)"))
    na_eff, s2_eff = fig5_netpipe.effective_peaks_gbit()
    assert abs(na_eff - 27.0) < 0.5 and abs(s2_eff - 86.0) < 1.0
    # The curve saturates below theoretical peak, like the measurement.
    assert 0.80 < rows[-1][1] / 100 < 0.90  # NaCL: 27/32 = 0.84
    assert 0.80 < rows[-1][2] / 100 < 0.90  # S2: 86/100 = 0.86
    # And is latency-dominated for tiny messages.
    assert rows[0][1] < 25 and rows[0][2] < 25


def test_fig5_message_aggregation_gain(once, show):
    gain = once(fig5_netpipe.message_aggregation_gain, NACL.machine(16), tile=288, steps=15)
    show(
        "CA aggregation on NaCL (tile 288, s=15): "
        f"{gain['base_bytes']} B at {gain['base_fraction_of_peak']:.0%} of peak -> "
        f"{gain['ca_bytes']} B at {gain['ca_fraction_of_peak']:.0%} of peak "
        "(paper: ~20% -> ~70%)"
    )
    assert 0.10 < gain["base_fraction_of_peak"] < 0.30
    assert 0.60 < gain["ca_fraction_of_peak"] < 0.80
