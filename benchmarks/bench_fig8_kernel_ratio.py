"""Fig. 8: tuned-kernel (ratio) sweep, base vs CA, per node count.

Shape checks: GFLOP/s grows as the ratio shrinks; CA's advantage
appears once the kernel stops dominating and peaks at the smallest
ratio; at the 16-node NaCL point the gain lands near the paper's 57 %;
the base full-kernel reference line sits below every reduced-kernel
point.
"""

from repro.analysis.tables import format_table
from repro.experiments import NACL, STAMPEDE2, fig8_kernel_ratio as f8


def test_fig8_kernel_ratio_nacl(once, show):
    points = once(f8.sweep, NACL, (4, 16, 64))
    ref = f8.reference_line(NACL, (16,))
    show(
        format_table(
            f8.HEADERS,
            [(p.nodes, p.ratio, p.base_gflops, p.ca_gflops, f"{p.gain:+.0%}") for p in points],
            title="Fig. 8 -- NaCL (paper: up to +57% at 16 nodes, small ratio)",
        ),
        f"base reference line (ratio=1.0, 16 nodes): {ref[16]:.0f} GFLOP/s",
    )
    best16 = f8.best_gain(points, nodes=16)
    assert best16.ratio == 0.2, "CA gain should peak at the smallest ratio"
    assert 0.40 <= best16.gain <= 0.75, (
        f"16-node NaCL gain {best16.gain:+.0%} should land near the paper's +57%"
    )
    # GFLOP/s rises monotonically as the kernel shrinks, per node count.
    for nodes in (4, 16, 64):
        series = [p.ca_gflops for p in points if p.nodes == nodes]
        ordered = [p.ratio for p in points if p.nodes == nodes]
        assert ordered == sorted(ordered) and series == sorted(series, reverse=True)
    # The reference (full-kernel) line sits below the tuned points.
    assert all(ref[16] < p.base_gflops for p in points if p.nodes == 16)


def test_fig8_kernel_ratio_stampede2(once, show):
    points = once(f8.sweep, STAMPEDE2, (16, 64))
    show(format_table(
        f8.HEADERS,
        [(p.nodes, p.ratio, p.base_gflops, p.ca_gflops, f"{p.gain:+.0%}") for p in points],
        title="Fig. 8 -- Stampede2 (paper: up to +33%; +18% at 16 nodes)",
    ))
    best = f8.best_gain(points)
    assert best.nodes == 64 and best.ratio == 0.2
    assert 0.20 <= best.gain <= 0.50, (
        f"Stampede2 best gain {best.gain:+.0%} should land near the paper's +33%"
    )
