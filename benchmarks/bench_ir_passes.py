"""Rewrite passes must pay for themselves on the acceptance config.

The IR pipeline (``repro.ir``) exists to buy back communication that
the hand-built graphs leave on the table: ``fuse`` contracts same-node
chains, ``coarsen`` batches same-level neighbours so their outbound
halos share one packed message.  These benches run the paper's NaCL
setup at n=192 / tile=12 over four nodes and demand the ``fuse,coarsen``
pipeline beat the untouched graph on *all three* axes the subsystem
advertises -- simulated makespan, remote message census, and
critical-path comm+queue blame.

Each test appends its outcome to ``BENCH_ir.json`` at the repo root so
the rewrite-pass trajectory accumulates across commits; the
``regression-gate`` CI job re-measures the sections deterministically
through :func:`repro.obs.regress.measure_ir_passes`.
"""

import json
import time
from pathlib import Path

from repro.obs.regress import measure_ir_passes

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_ir.json"

PASSES = "fuse,coarsen:factor=4"
CONFIG = {"problem_n": 192, "tile": 12, "nodes": 4, "steps": 4,
          "iterations": 8}


def _emit(key: str, record: dict) -> None:
    try:
        doc = json.loads(RECORD_PATH.read_text())
    except (OSError, ValueError):
        doc = {}
    record["unix_time"] = round(time.time(), 3)
    doc[key] = record
    RECORD_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _bench(impl: str, section: str, once, show) -> None:
    metrics = once(
        measure_ir_passes,
        n=CONFIG["problem_n"], tile=CONFIG["tile"], nodes=CONFIG["nodes"],
        steps=CONFIG["steps"], iterations=CONFIG["iterations"],
        impl=impl, passes=PASSES,
    )
    show(
        f"{impl} n={CONFIG['problem_n']} tile={CONFIG['tile']} "
        f"nodes={CONFIG['nodes']} passes={PASSES}",
        f"  makespan  {1e3 * metrics['makespan_base_seconds']:8.3f} ms -> "
        f"{1e3 * metrics['makespan_ir_seconds']:8.3f} ms "
        f"({metrics['pipeline_speedup']:.2f}x)",
        f"  messages  {metrics['remote_messages_base']:8.0f}    -> "
        f"{metrics['remote_messages_ir']:8.0f}    "
        f"(saved {metrics['saved_msg_count']:.0f})",
        f"  comm+queue blame  {1e3 * metrics['comm_blame_base_seconds']:.3f}"
        f" ms -> {1e3 * metrics['comm_blame_ir_seconds']:.3f} ms",
        f"  tasks     {metrics['tasks_base']:8.0f}    -> "
        f"{metrics['tasks_ir']:8.0f}",
    )
    assert metrics["makespan_ir_seconds"] < metrics["makespan_base_seconds"], (
        f"{PASSES} did not reduce simulated makespan on {impl}"
    )
    assert metrics["remote_messages_ir"] < metrics["remote_messages_base"], (
        f"{PASSES} did not reduce the remote message census on {impl}"
    )
    assert metrics["comm_blame_ir_seconds"] < metrics["comm_blame_base_seconds"], (
        f"{PASSES} did not reduce critical-path comm+queue blame on {impl}"
    )
    assert metrics["saved_msg_count"] > 0
    _emit(section, {**CONFIG, "impl": impl, "passes": PASSES, **metrics})


def test_fuse_coarsen_beats_hand_built_ca(once, show):
    """fuse,coarsen on top of the CA graph still wins: batching is
    orthogonal to the s-step halo deepening."""
    _bench("ca-parsec", "ir_fuse_coarsen", once, show)


def test_fuse_coarsen_beats_base_graph(once, show):
    _bench("base-parsec", "ir_fuse_coarsen_base", once, show)
