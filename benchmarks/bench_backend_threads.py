"""Real shared-memory execution: base vs CA wall-clock speedup over
worker threads, and how well the simulator predicted it.

Unlike every other bench in this suite, the interesting number here
*is* the wall time: the task graphs run for real on this host's cores
through ``repro.exec`` (the numpy kernels release the GIL).  Three
findings are reported:

* measured strong scaling of base and CA over ``jobs`` in {1, 2, 4};
* the base-vs-CA comparison on real hardware (the paper's headline,
  without the network: CA's fewer-but-fatter tasks vs base's
  per-iteration synchronisation);
* simulated-vs-measured occupancy and GFLOP/s side by side
  (``repro.exec.compare``), closing the loop on the model.

The >= 1.5x speedup assertion only applies on hosts with >= 4 cores
-- on smaller machines (or a 1-core CI container) the tables still
print but the scaling assertion is skipped, as wall-clock parallel
speedup physically cannot exist there.
"""

from __future__ import annotations

import os

from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.exec.compare import compare_backends, format_comparison
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem

FULL = bool(os.environ.get("REPRO_FULL"))
N = 1536 if FULL else 384
TILE = N // 4  # 16 tiles: enough width for 4 workers, fat enough kernels
ITERATIONS = 20 if FULL else 8
STEPS = 4
JOBS = (1, 2, 4)
HOST_CORES = os.cpu_count() or 1


def _measure(problem: JacobiProblem, impl: str, jobs: int, **kwargs) -> float:
    """Best-of-3 wall seconds (standard wall-clock practice)."""
    return min(
        run(problem, impl=impl, machine=nacl(1), backend="threads", jobs=jobs,
            **kwargs).elapsed
        for _ in range(3)
    )


def test_backend_threads_speedup(once, show):
    problem = JacobiProblem(n=N, iterations=ITERATIONS)

    def sweep():
        results = {}
        for impl, kwargs in (
            ("base-parsec", {"tile": TILE}),
            ("ca-parsec", {"tile": TILE, "steps": STEPS}),
        ):
            results[impl] = {j: _measure(problem, impl, j, **kwargs) for j in JOBS}
        return results

    results = once(sweep)

    rows = []
    for impl, by_jobs in results.items():
        serial = by_jobs[JOBS[0]]
        for jobs in JOBS:
            wall = by_jobs[jobs]
            rows.append((
                impl, jobs, f"{wall * 1e3:.1f}",
                f"{serial / wall:.2f}x",
                f"{100 * serial / wall / jobs:.0f}%",
                f"{problem.total_flops / wall / 1e9:.2f}",
            ))
    show(format_table(
        ("impl", "jobs", "wall ms", "speedup", "efficiency", "GFLOP/s"),
        rows,
        title=f"threads backend, {N}^2 x {ITERATIONS} iters, tile {TILE}, "
              f"host has {HOST_CORES} cores",
    ))

    ca_vs_base = results["base-parsec"][4] / results["ca-parsec"][4]
    show(f"CA vs base at jobs=4 (real hardware): {ca_vs_base:.2f}x")

    # Sanity that holds on any host: every configuration completed and
    # adding workers never catastrophically regresses (>3x slower).
    for impl, by_jobs in results.items():
        for jobs in JOBS:
            assert by_jobs[jobs] > 0
            assert by_jobs[jobs] < 3 * by_jobs[1] + 0.05, (
                f"{impl} at jobs={jobs} pathologically slower than serial"
            )

    # The acceptance bar -- only meaningful with real cores to scale on.
    if HOST_CORES >= 4:
        for impl, by_jobs in results.items():
            speedup = by_jobs[1] / by_jobs[4]
            assert speedup >= 1.5, (
                f"{impl}: jobs=4 speedup {speedup:.2f}x < 1.5x on a "
                f"{HOST_CORES}-core host"
            )


def test_backend_threads_vs_simulator(once, show):
    """Predicted vs measured, per implementation."""
    problem = JacobiProblem(n=N // 2, iterations=ITERATIONS)
    jobs = min(4, HOST_CORES)

    def measure():
        return [
            compare_backends(problem, impl=impl, machine=nacl(1), jobs=jobs, **kw)
            for impl, kw in (
                ("base-parsec", {"tile": N // 8}),
                ("ca-parsec", {"tile": N // 8, "steps": STEPS}),
            )
        ]

    comparisons = once(measure)
    show(format_comparison(
        comparisons,
        title=f"simulator (NaCL node model) vs this host, jobs={jobs}",
    ))
    for comp in comparisons:
        # The model cannot be expected to know this host's clock, but
        # both sides must produce finite, nonzero performance and
        # identical numerics.
        assert comp.predicted_gflops > 0 and comp.achieved_gflops > 0
        assert 0 <= comp.measured_occupancy <= 1
        import numpy as np

        assert np.array_equal(comp.sim.grid, comp.real.grid)
