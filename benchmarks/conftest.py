"""Shared benchmark plumbing.

Every bench regenerates one paper artefact and *prints the same rows
the paper reports* (through ``show``, which bypasses pytest's capture
so the tables land in the terminal / tee'd log).  Heavy simulations
run exactly once via ``once`` -- the interesting measurement is the
modelled virtual time, not the wall time of the simulator.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture (tables stay visible in logs)."""

    def _show(*chunks: str) -> None:
        with capsys.disabled():
            print()
            for chunk in chunks:
                print(chunk)

    return _show


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once
