"""Weak scaling (extension study, not a paper figure).

Constant per-node workload: ideal throughput grows linearly with the
node count.  Checks both implementations keep high weak-scaling
efficiency at full kernel speed and that CA's efficiency advantage
appears once the kernel is tuned down (the comm-bound regime).
"""

from repro.analysis.tables import format_table
from repro.experiments import weak_scaling
from repro.experiments.common import NACL


def test_weak_scaling_efficiency(once, show):
    points = once(weak_scaling.sweep, NACL, 5, (1, 4, 16))
    show(format_table(
        weak_scaling.HEADERS, weak_scaling.rows(points),
        title="Weak scaling, NaCL, 5x5 tiles of 288 per node (ratio 1.0)",
    ))
    for p in points:
        assert p.base_efficiency > 0.7
        assert p.ca_efficiency > 0.7
    # Throughput must grow with the machine.
    series = [p.base_gflops for p in points]
    assert series == sorted(series)


def test_weak_scaling_comm_bound_favours_ca(once, show):
    points = once(weak_scaling.sweep, NACL, 5, (1, 16), 0.2)
    show(format_table(
        weak_scaling.HEADERS, weak_scaling.rows(points),
        title="Weak scaling, NaCL, tuned kernel (ratio 0.2)",
    ))
    multi = points[-1]
    assert multi.ca_gflops > multi.base_gflops
