"""Ablation: per-message software overhead (DESIGN.md #3).

The single most important network parameter for the CA scheme: its
whole advantage is amortising per-message cost over s iterations.
Sweeping it shows the CA gain ramping from nothing (free messages) to
large (expensive messages).
"""

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.experiments import NACL
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=5760, iterations=12)


def _with_overhead(usec: float):
    m = NACL.machine(16)
    return replace(m, network=replace(m.network, software_overhead=usec * 1e-6))


def _gain(usec: float) -> tuple[float, float, float]:
    machine = _with_overhead(usec)
    base = run(PROBLEM, impl="base-parsec", machine=machine, tile=288,
               ratio=0.2, mode="simulate")
    ca = run(PROBLEM, impl="ca-parsec", machine=machine, tile=288, steps=12,
             ratio=0.2, mode="simulate")
    return base.gflops, ca.gflops, ca.gflops / base.gflops - 1


def test_overhead_ablation(once, show):
    overheads = (2, 10, 20, 40, 80)
    rows = []
    for usec in overheads:
        b, c, g = once(_gain, usec) if usec == overheads[-1] else _gain(usec)
        rows.append((usec, b, c, f"{g:+.0%}"))
    show(format_table(
        ("overhead (us)", "base GFLOP/s", "CA GFLOP/s", "CA gain"),
        rows, title="Ablation: per-message software overhead (ratio 0.2)",
    ))
    gains = [float(r[3].rstrip("%")) for r in rows]
    # CA's edge grows monotonically with per-message cost...
    assert gains == sorted(gains)
    # ...is negligible when messages are nearly free...
    assert gains[0] < 10
    # ...and is decisive when they are expensive.
    assert gains[-1] > 50
