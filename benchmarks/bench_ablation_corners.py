"""Ablation: CA corner traffic (DESIGN.md #4).

PA1 obliges boundary tiles to buffer corner-neighbour blocks in
addition to the deep side strips; this bench quantifies that cost
(extra messages, extra bytes, extra ghost memory) against the base
scheme, straight from the static graph census -- numbers independent
of any timing model.
"""

from repro.analysis.tables import format_table
from repro.core.base_parsec import build_base_graph
from repro.core.ca_parsec import build_ca_graph
from repro.experiments import NACL
from repro.runtime.ca_transform import plan
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=5760, iterations=15)
MACHINE = NACL.machine(16)


def _census():
    base = build_base_graph(PROBLEM, MACHINE, tile=288, with_kernels=False)
    ca = build_ca_graph(PROBLEM, MACHINE, tile=288, steps=15, with_kernels=False)
    return base.graph.census(), ca.graph.census(), base, ca


def test_corner_traffic(once, show):
    base_census, ca_census, base, ca = once(_census)
    corner_msgs = sum(
        1
        for (key, tag) in ca.graph.consumers
        if tag.startswith("c")
    )
    corner_bytes = sum(
        flow.nbytes
        for task in ca.graph
        for flow in task.inputs
        if flow.tag.startswith("c")
    )
    rows = [
        ("remote messages", base_census.remote_messages, ca_census.remote_messages),
        ("remote MB", base_census.remote_bytes / 1e6, ca_census.remote_bytes / 1e6),
        ("corner messages", 0, corner_msgs),
        ("corner MB", 0.0, corner_bytes / 1e6),
    ]
    show(format_table(("Quantity", "base", "CA (s=15)"), rows,
                      title="Ablation: CA corner traffic (static census)"))
    # CA sends s-fold fewer messages...
    assert ca_census.remote_messages < base_census.remote_messages / 5
    # ...but moves *more* bytes (replicated halo + corners).
    assert ca_census.remote_bytes > base_census.remote_bytes
    # Corners exist and are a modest fraction of CA's remote bytes.
    assert corner_msgs > 0
    assert corner_bytes < 0.25 * ca_census.remote_bytes


def test_ca_plan_reports_replication(once, show):
    base = build_base_graph(PROBLEM, MACHINE, tile=288, with_kernels=False)
    p = once(plan, base.spec, steps=15)
    show(f"CA plan: {p}")
    assert p.extra_ghost_bytes > 0
    assert 0.5 < p.messages_saved_fraction < 1.0
    assert p.boundary_tiles + p.interior_tiles == len(list(base.spec.tiles()))
