"""Fig. 6: single-node base-PaRSEC GFLOP/s vs tile size.

Shape checks mirror the paper: the optimum lands in 200-300 on NaCL
(~11 GFLOP/s plateau) and 400-2000 on Stampede2 (~43.5), tiny tiles
lose to task overhead and oversized tiles starve the workers.
"""

from repro.analysis.tables import format_table
from repro.experiments import NACL, STAMPEDE2, fig6_tilesize


def _check(setup, points, show):
    rows = [(p.tile, p.gflops) for p in points]
    show(format_table(
        fig6_tilesize.HEADERS, rows,
        title=f"Fig. 6 -- {setup.name} (paper plateau "
              f"~{fig6_tilesize.PAPER_PLATEAU[setup.name]} GFLOP/s at "
              f"{fig6_tilesize.PAPER_OPTIMUM[setup.name]})",
    ))
    best = fig6_tilesize.best(points)
    lo, hi = fig6_tilesize.PAPER_OPTIMUM[setup.name]
    assert lo <= best.tile <= hi, f"optimum {best.tile} outside paper range {lo}-{hi}"
    plateau = fig6_tilesize.PAPER_PLATEAU[setup.name]
    assert abs(best.gflops - plateau) / plateau < 0.15
    # Both ends of the sweep are worse than the optimum.
    assert points[0].gflops < best.gflops
    assert points[-1].gflops < best.gflops


def test_fig6_tilesize_nacl(once, show):
    points = once(fig6_tilesize.sweep, NACL)
    _check(NACL, points, show)


def test_fig6_tilesize_stampede2(once, show):
    points = once(fig6_tilesize.sweep, STAMPEDE2)
    _check(STAMPEDE2, points, show)
