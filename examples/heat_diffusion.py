#!/usr/bin/env python
"""Heat diffusion: a physical time-stepping workload on the CA runtime.

Simulates explicit-Euler heat diffusion (the intro's canonical PDE
workload): a hot square in a cold plate with cold walls.  The 5-point
update with heat weights is exactly the paper's stencil, so the
communication-avoiding machinery applies unchanged -- we run it with a
deep step size and verify energy behaviour and agreement with the
reference solver, then report what CA saved in messages.
"""

import numpy as np

import repro


def hot_square(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """100-degree square patch near the cold north wall."""
    out = np.zeros(rows.shape)
    hot = (rows >= 2) & (rows < 14) & (cols >= 58) & (cols < 70)
    out[hot] = 100.0
    return out


def main() -> None:
    problem = repro.JacobiProblem(
        n=128,
        iterations=96,
        init=hot_square,
        bc=repro.DirichletBC(0.0),  # cold walls
        weights=repro.StencilWeights.heat_explicit(0.2),  # stable step
    )
    machine = repro.nacl(4)

    ca = repro.run(problem, impl="ca-parsec", machine=machine,
                   tile=32, steps=8, mode="execute")
    base = repro.run(problem, impl="base-parsec", machine=machine,
                     tile=32, mode="execute")

    ref = problem.reference_solution()
    assert np.array_equal(ca.grid, ref), "CA result must be bit-exact"
    assert np.array_equal(base.grid, ref)

    initial = problem.initial_grid()
    print(f"heat diffusion on a {problem.shape[0]}^2 plate, "
          f"{problem.iterations} explicit steps")
    print(f"  peak temperature: {initial.max():.1f} -> {ca.grid.max():.2f}")
    print(f"  total heat (cold walls leak it): "
          f"{initial.sum():.0f} -> {ca.grid.sum():.0f}")
    assert ca.grid.max() < initial.max(), "diffusion must flatten the peak"
    assert 0 < ca.grid.sum() < initial.sum(), "cold walls absorb heat"

    # The hot spot spreads: cells outside the original square warm up.
    outside = ca.grid[22, 64]
    print(f"  temperature at (20, 64), outside the source: {outside:.3f}")
    assert outside > 0

    print(f"\ncommunication: base {base.messages} messages "
          f"({base.message_bytes / 1e3:.0f} kB) vs CA {ca.messages} "
          f"({ca.message_bytes / 1e3:.0f} kB) -- "
          f"{1 - ca.messages / base.messages:.0%} fewer messages for "
          f"{ca.redundant_fraction:.1%} redundant work")


if __name__ == "__main__":
    main()
