#!/usr/bin/env python
"""Krylov solvers on the distributed substrate (the intro's workload).

The paper motivates stencil/SpMV optimisation through the solvers
built on it: Jacobi is the simplest, Krylov methods the workhorses.
This example solves the same Dirichlet Poisson problem three ways on
the PETSc-lite substrate -- Richardson (the paper's Jacobi loop as a
solver), plain CG and Jacobi-preconditioned CG -- and compares their
*communication profiles*: SpMVs (ghost exchanges) and global
reductions (allreduces), the costs s-step/CA Krylov methods attack.
"""

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.petsclite.ksp import cg, jacobi_preconditioner, poisson_system, richardson


def main() -> None:
    problem = repro.JacobiProblem(
        n=48, iterations=0,
        bc=repro.DirichletBC(lambda r, c: np.cos(0.15 * r) + 0.02 * c),
    )
    A, b = poisson_system(problem, nranks=8)

    rich = richardson(A, b, omega=0.24, rtol=1e-8, maxiter=20000)
    plain = cg(A, b, rtol=1e-8, maxiter=2000)
    pre = cg(A, b, rtol=1e-8, maxiter=2000,
             preconditioner=jacobi_preconditioner(A))

    # Note: the constant-coefficient Laplacian has a constant diagonal,
    # so Jacobi preconditioning is an exact rescaling here (identical
    # iteration counts); tests/test_ksp.py shows it accelerating
    # genuinely ill-conditioned operators.
    rows = []
    for name, res in (("Richardson (Jacobi)", rich), ("CG", plain),
                      ("CG + Jacobi PC", pre)):
        assert res.converged, f"{name} did not converge"
        rows.append((name, res.iterations, res.spmvs, res.reductions,
                     f"{res.final_residual:.2e}"))

    print(format_table(
        ("solver", "iterations", "SpMVs (halo exchanges)",
         "reductions (allreduces)", "final residual"),
        rows,
        title=f"Dirichlet Poisson, {problem.shape[0]}^2 unknowns, rtol 1e-8",
    ))

    x_rich = rich.x.to_global()
    x_cg = pre.x.to_global()
    print(f"\nsolution agreement |CG - Richardson|_inf = "
          f"{np.max(np.abs(x_cg - x_rich)):.2e}")
    assert np.allclose(x_cg, x_rich, atol=1e-5)

    print("CG cuts halo exchanges by "
          f"{rich.spmvs / plain.spmvs:.0f}x vs the stationary iteration, "
          "but adds the allreduce traffic that communication-avoiding "
          "(s-step) Krylov methods restructure -- the paper's runtime is "
          "the substrate both optimisations target.")


if __name__ == "__main__":
    main()
