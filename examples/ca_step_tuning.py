#!/usr/bin/env python
"""Tuning the communication-avoiding step size (Fig. 9 in miniature).

The step size s trades per-message software cost against redundant
halo computation and ghost memory.  This example sweeps s in the
comm-bound regime (tuned kernel, ratio 0.2) and in the kernel-bound
regime (ratio 1.0), prints the tradeoff columns, and uses the
runtime's automatic-CA planner to show what each s costs in
replication before running anything.
"""

import repro
from repro.analysis.tables import format_table
from repro.core.base_parsec import build_base_graph
from repro.runtime.ca_transform import plan


def main() -> None:
    problem = repro.JacobiProblem(n=5760, iterations=30)
    machine = repro.nacl(16)
    tile = 288
    step_sizes = (1, 5, 10, 15, 25, 40)

    base_build = build_base_graph(problem, machine, tile=tile, with_kernels=False)

    rows = []
    for s in step_sizes:
        p = plan(base_build.spec, steps=s) if s > 1 else None
        bound = repro.run(problem, impl="ca-parsec", machine=machine,
                          tile=tile, steps=s, ratio=0.2, mode="simulate")
        calm = repro.run(problem, impl="ca-parsec", machine=machine,
                         tile=tile, steps=s, ratio=1.0, mode="simulate")
        rows.append((
            s,
            bound.messages,
            f"{bound.redundant_fraction:.1%}",
            f"{(p.extra_ghost_bytes / 1e6) if p else 0.0:.1f}",
            f"{bound.gflops:.0f}",
            f"{calm.gflops:.1f}",
        ))

    print(format_table(
        ("s", "messages", "redundant work", "extra ghost MB",
         "GFLOP/s (r=0.2)", "GFLOP/s (r=1.0)"),
        rows,
        title="CA step-size tuning, 16 NaCL nodes, 5760^2 grid, tile 288",
    ))

    best = max(rows, key=lambda r: float(r[4]))
    print(f"\nbest step in the comm-bound regime: s={best[0]}")
    print("paper's finding: the optimum is interior and must be searched; "
          "step size is nearly irrelevant when the kernel dominates.")


if __name__ == "__main__":
    main()
