#!/usr/bin/env python
"""The runtime's two programming models on a tiny non-stencil problem.

Shows that the substrate under the paper's stencils is a general
task runtime: the same blocked matrix-vector iteration written twice,
first with Dynamic Task Discovery (sequential insertion, dependencies
inferred from data access modes) and then with a Parameterized Task
Graph (algebraic dataflow, never materialised by the user), both
executed on the simulated 2-node machine with real numpy payloads.
"""

import numpy as np

import repro
from repro.runtime import (
    IN,
    INOUT,
    DTDRuntime,
    Dependency,
    Engine,
    PTG,
    TaskClass,
)


def dtd_version(A_blocks, x0, sweeps):
    """y = A x repeated, inserted task by task like PaRSEC DTD."""
    nb = len(A_blocks)
    dtd = DTDRuntime()
    xs = [dtd.data(f"x{b}", node=b % 2, nbytes=x0[b].nbytes, initial=x0[b])
          for b in range(nb)]

    def make_kernel(blocks_row):
        def kernel(ins, task):
            # Keep data payloads only (WAR/WAW control edges carry
            # None) and order blocks by their handle name "x<b>#v<k>".
            blocks = {
                tag.split("#")[0]: np.asarray(v)
                for (_, tag), v in ins.items()
                if v is not None and tag.startswith("x")
            }
            x = np.concatenate([blocks[f"x{b}"] for b in range(len(blocks))])
            return {next(iter(task.out_nbytes)): blocks_row @ x}
        return kernel

    for _ in range(sweeps):
        # Row b updates x_b from every current block (INOUT on its own).
        for b in range(nb):
            accesses = [(xs[c], IN) for c in range(nb) if c != b] + [(xs[b], INOUT)]
            dtd.insert_task(make_kernel(A_blocks[b]), node=b % 2,
                            accesses=accesses, cost=1e-6)
    # A terminal reader gathers the final version of every handle
    # (intermediate versions are recycled by the runtime).
    def fetch(ins, task):
        blocks = {
            tag.split("#")[0]: np.asarray(v)
            for (_, tag), v in ins.items()
            if v is not None
        }
        return {"final": np.concatenate([blocks[f"x{b}"] for b in range(nb)])}

    sink = dtd.insert_task(fetch, node=0, accesses=[(x, IN) for x in xs])
    rep = Engine(dtd.graph(), repro.nacl(2), execute=True).run()
    return np.asarray(rep.results[(sink.key, "final")])


def ptg_version(A_blocks, x0, sweeps):
    """The same iteration as a parameterized task graph."""
    nb = len(A_blocks)

    def kernel(ins, task):
        _, b, t = task.key
        x = np.concatenate(
            [np.asarray(ins[(("mv", c, t - 1), "x")]) if t > 0
             else x0[c] for c in range(nb)]
        )
        return {"x": A_blocks[b] @ x}

    ptg = PTG()
    ptg.add_class(TaskClass(
        name="mv",
        parameter_space=lambda: ((b, t) for t in range(sweeps) for b in range(nb)),
        node=lambda b, t: b % 2,
        dependencies=[
            Dependency(
                producer=lambda b, t, c=c: ("mv", c, t - 1) if t > 0 else None,
                tag="x",
                nbytes=x0[0].nbytes,
            )
            for c in range(4)
        ],
        outputs={"x": x0[0].nbytes},
        cost=1e-6,
        kernel=kernel,
    ))
    rep = Engine(ptg.build(), repro.nacl(2), execute=True).run()
    return np.concatenate(
        [np.asarray(rep.results[(("mv", b, sweeps - 1), "x")]) for b in range(nb)]
    )


def main() -> None:
    rng = np.random.default_rng(0)
    n, nb, sweeps = 16, 4, 5
    A = rng.normal(size=(n, n)) / n  # contraction, keeps values tame
    A_blocks = [A[b * 4:(b + 1) * 4, :] for b in range(nb)]
    x0 = [rng.normal(size=4) for _ in range(nb)]

    want = np.concatenate(x0)
    for _ in range(sweeps):
        want = A @ want

    got_ptg = ptg_version(A_blocks, x0, sweeps)
    assert np.allclose(got_ptg, want, rtol=1e-12), "PTG result mismatch"
    print(f"PTG front-end: {sweeps} blocked mat-vec sweeps OK "
          f"(|x| = {np.linalg.norm(got_ptg):.6f})")

    # DTD's in-place semantics use the freshest blocks (Gauss-Seidel
    # flavoured), so we check self-consistency instead of the PTG value.
    got_dtd = dtd_version(A_blocks, x0, sweeps)
    again = dtd_version(A_blocks, x0, sweeps)
    assert np.allclose(got_dtd, again), "DTD must be deterministic"
    print(f"DTD front-end: sequential insertion with inferred deps OK "
          f"(|x| = {np.linalg.norm(got_dtd):.6f})")
    print("\nBoth PaRSEC programming models run on the same engine, "
          "with real payloads and simulated time.")


if __name__ == "__main__":
    main()
