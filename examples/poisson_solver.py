#!/usr/bin/env python
"""Solving a real PDE with the paper's distributed implementations.

Everything comes together: the damped-Jacobi iteration with a forcing
term turns the paper's stencil sweeps into an actual Poisson solver,
executed through the communication-avoiding task graph with real
numerics and modelled time.  We solve a manufactured problem, verify
the answer against the PDE's exact solution AND against the
independent multigrid solver, and report what CA saved along the way.
"""

import numpy as np

import repro
from repro.multigrid import solve as mg_solve


def main() -> None:
    n = 63
    h = 1.0 / (n + 1)
    omega = 0.9
    x = np.arange(1, n + 1) * h
    X, Y = np.meshgrid(x, x, indexing="ij")
    u_exact = np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    f = 5.0 * np.pi**2 * u_exact

    def source(r, c):
        return omega * h * h / 4.0 * f[np.clip(r, 0, n - 1), np.clip(c, 0, n - 1)]

    sweeps = 4000
    problem = repro.JacobiProblem(
        n=n, iterations=sweeps,
        weights=repro.StencilWeights.damped_jacobi(omega),
        init=0.0, bc=repro.DirichletBC(0.0), source=source,
    )

    machine = repro.nacl(4)
    ca = repro.run(problem, impl="ca-parsec", machine=machine,
                   tile=16, steps=8, mode="execute")
    base_msgs = repro.run(problem, impl="base-parsec", machine=machine,
                          tile=16, mode="simulate").messages

    pde_err = float(np.max(np.abs(ca.grid - u_exact)))
    mg = mg_solve(f, rtol=1e-12)
    mg_err = float(np.max(np.abs(ca.grid - mg.u)))

    print(f"Poisson -Lap(u) = f on a {n}x{n} grid, {sweeps} damped-Jacobi "
          "sweeps via CA-PaRSEC (real kernels):")
    print(f"  error vs exact PDE solution : {pde_err:.2e} "
          f"(O(h^2) = {h * h:.2e})")
    print(f"  error vs multigrid solver   : {mg_err:.2e} "
          f"(two independent solvers, one discrete answer)")
    print(f"  messages: {ca.messages} (base version would send "
          f"{base_msgs}; CA cut {1 - ca.messages / base_msgs:.0%} for "
          f"{ca.redundant_fraction:.1%} redundant work)")
    assert pde_err < 10 * h * h
    assert mg_err < 1e-4
    print("\nJacobi needed thousands of sweeps where multigrid needed ~16 "
          "cycles -- exactly why the paper's kernel must be cheap: "
          "solvers built on it apply it relentlessly.")


if __name__ == "__main__":
    main()
