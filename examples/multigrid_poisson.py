#!/usr/bin/env python
"""Geometric multigrid: the stencil substrate's canonical consumer.

The paper's introduction motivates stencil optimisation through
"geometric multigrid and Krylov solvers"; this example closes that
loop.  It solves a manufactured Poisson problem with V-cycles built
entirely on the reproduction's 5-point kernels, demonstrates the
textbook grid-independent convergence factor, and counts the stencil
work units -- the quantity the paper's distributed runtimes would be
accelerating at scale.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.multigrid import fmg, levels_for, solve


def manufactured(n: int):
    h = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * h
    X, Y = np.meshgrid(x, x, indexing="ij")
    u = np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    return u, 5.0 * np.pi**2 * u


def main() -> None:
    rows = []
    for k in (5, 6, 7, 8):
        n = 2**k - 1
        u_exact, f = manufactured(n)
        res = solve(f, rtol=1e-9)
        err = float(np.max(np.abs(res.u - u_exact)))
        fmg_err = float(np.max(np.abs(fmg(f) - u_exact)))
        rows.append((
            f"{n}^2", levels_for(n), res.cycles,
            f"{res.convergence_factor:.3f}", f"{err:.2e}", f"{fmg_err:.2e}",
        ))
        assert res.converged

    print(format_table(
        ("grid", "levels", "V-cycles to 1e-9", "conv. factor",
         "error vs exact", "FMG error (1 cycle/level)"),
        rows,
        title="Poisson -Lap(u) = f, V(2,1)-cycles on the 5-point substrate",
    ))

    factors = [float(r[3]) for r in rows]
    print(f"\nconvergence factor stays ~{np.mean(factors):.2f} as the grid "
          "grows 32x -- the multigrid invariant (plain Jacobi's factor "
          "would approach 1 like 1 - O(1/n^2)).")
    print("errors fall 4x per refinement: the solver is delivering full "
          "O(h^2) discretisation accuracy, and FMG gets there in one "
          "pass -- O(N) total stencil work.")


if __name__ == "__main__":
    main()
