#!/usr/bin/env python
"""Execution traces: see communication hiding and avoiding (Fig. 10).

Captures per-worker traces of the base and CA runs in the comm-bound
regime and renders them as ASCII Gantt charts: 'B' = boundary task,
'#' = interior task, '>' / '<' = the communication thread sending and
receiving, '.' = idle.  The base chart shows workers starving while
the comm thread grinds through per-message overhead; the CA chart
stays dense.
"""

import repro
from repro.analysis.gantt import render_gantt
from repro.analysis.occupancy import compare_occupancy


def main() -> None:
    problem = repro.JacobiProblem(n=2880, iterations=12)
    machine = repro.nacl(16)
    common = dict(machine=machine, tile=144, ratio=0.25, mode="simulate", trace=True)

    base = repro.run(problem, impl="base-parsec", **common)
    ca = repro.run(problem, impl="ca-parsec", steps=12, **common)

    node = 0
    workers = machine.node.compute_cores
    print("=== base-PaRSEC (ghost exchange every iteration) ===")
    print(render_gantt(base.trace, node, width=96))
    print()
    print("=== CA-PaRSEC (exchange every 12 iterations, redundant halo) ===")
    print(render_gantt(ca.trace, node, width=96))

    comp = compare_occupancy(base.trace, ca.trace, node, workers)
    print()
    print(f"occupancy: base {comp['base_occupancy']:.1%} -> "
          f"CA {comp['ca_occupancy']:.1%}")
    print(f"end-to-end: CA {comp['ca_speedup']:.2f}x faster "
          f"(CA kernels {comp['ca_kernel_slowdown']:.2f}x slower on average "
          "from the extra ghost copies -- the paper's Fig. 10 tradeoff)")


if __name__ == "__main__":
    main()
