#!/usr/bin/env python
"""Real shared-memory parallel execution of the stencil task graphs.

Everything else in this repo *models* time; this example measures it.
The same CA task graph is executed on real worker threads
(``backend="threads"``) at several worker counts, verified bit-exact
against the reference solver, and compared against the simulator's
prediction for the identical graph.  Also shows the asynchronous API:
a ``RunHandle`` with per-task futures and cancellation.
"""

import os

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.core.base_parsec import build_base_graph
from repro.exec import ThreadedExecutor
from repro.exec.compare import compare_backends, format_comparison


def main() -> None:
    problem = repro.JacobiProblem(n=256, iterations=12, init=0.0,
                                  bc=repro.DirichletBC(1.0))
    reference = problem.reference_solution()
    cores = os.cpu_count() or 1

    # -- measured strong scaling ---------------------------------------
    rows = []
    serial = None
    for jobs in (1, 2, 4):
        result = repro.run(problem, impl="ca-parsec", machine=repro.nacl(1),
                           tile=64, steps=4, backend="threads", jobs=jobs)
        assert np.array_equal(result.grid, reference), "numerics diverged!"
        serial = serial or result.elapsed
        rows.append((jobs, f"{result.elapsed * 1e3:.1f}",
                     f"{serial / result.elapsed:.2f}x",
                     f"{result.occupancy():.2f}"))
    print(format_table(
        ("jobs", "wall ms", "speedup", "occupancy"), rows,
        title=f"ca-parsec on real threads (host has {cores} cores), "
              "bit-exact vs reference",
    ))

    # -- simulated vs measured ------------------------------------------
    comp = compare_backends(problem, impl="ca-parsec", jobs=min(4, cores),
                            tile=64, steps=4)
    print()
    print(format_comparison([comp], title="simulator prediction vs this host"))

    # -- the asynchronous API -------------------------------------------
    built = build_base_graph(problem, repro.nacl(1), tile=64)
    handle = ThreadedExecutor(built.graph, jobs=2, trace=True).start()
    # Watch one mid-graph task complete while the run is in flight.
    record = handle.future(("base", 0, 0, problem.iterations - 1)).result(timeout=60)
    print(f"\ntile (0,0) finished its last iteration on worker "
          f"{record.worker} at t={record.end * 1e3:.2f} ms")
    report = handle.result(timeout=60)
    print(f"run complete: {report.tasks_run} tasks, "
          f"{report.steals} steals, {report.elapsed * 1e3:.1f} ms wall, "
          f"worker occupancy {report.worker_occupancy:.2f}")


if __name__ == "__main__":
    main()
