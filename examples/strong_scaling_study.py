#!/usr/bin/env python
"""Strong scaling study: Fig. 7 in miniature, on your terminal.

Sweeps node counts for the three implementations on the NaCL machine
model (scaled-down problem so it runs in seconds) and prints the
speedup table the paper plots: PaRSEC versions ~2x PETSc, base ~= CA
while the kernel is memory-bound.
"""

import repro
from repro.analysis.tables import format_table


def main() -> None:
    problem = repro.JacobiProblem(n=5760, iterations=10)
    tile, steps = 288, 15
    node_counts = (1, 4, 16)

    baseline = repro.run(
        problem, impl="base-parsec", machine=repro.nacl(1), tile=tile,
        mode="simulate",
    ).gflops

    rows = []
    for nodes in node_counts:
        machine = repro.nacl(nodes)
        cells = {}
        for impl, kwargs in (
            ("petsc", {}),
            ("base-parsec", {"tile": tile}),
            ("ca-parsec", {"tile": tile, "steps": steps}),
        ):
            res = repro.run(problem, impl=impl, machine=machine,
                            mode="simulate", **kwargs)
            cells[impl] = res.gflops
        rows.append((
            nodes,
            f"{cells['petsc'] / baseline:.2f}",
            f"{cells['base-parsec'] / baseline:.2f}",
            f"{cells['ca-parsec'] / baseline:.2f}",
            f"{cells['base-parsec'] / cells['petsc']:.2f}x",
        ))

    print(format_table(
        ("nodes", "PETSc", "base-PaRSEC", "CA-PaRSEC", "PaRSEC/PETSc"),
        rows,
        title=f"strong scaling speedup over 1-node base-PaRSEC "
              f"({problem.shape[0]}^2 grid, tile {tile}, NaCL model)",
    ))
    print("\npaper's finding: the task-based versions deliver ~2x the SpMV"
          "\nbaseline (index traffic) and base ~= CA at full kernel speed.")


if __name__ == "__main__":
    main()
