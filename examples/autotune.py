#!/usr/bin/env python
"""Autotuning instead of hand-picking tile and step sizes.

The paper fixes its operating points by exhaustive sweeps (Fig. 6 for
the tile, Fig. 9 for the CA step).  ``repro.tune`` automates that
search: the analytic machine model ranks every legal configuration for
free, successive halving spends a small run budget refining the
shortlist, and the winner is cached per machine fingerprint so
follow-up runs (and ``run(..., tile="auto")``) answer instantly.

This example tunes a small problem, shows the leaderboard, then lets
``tile="auto"`` consume the cached winner end-to-end.
"""

import tempfile
from pathlib import Path

import repro
from repro.tuning import TuningCache, format_tuning_report


def main() -> None:
    problem = repro.JacobiProblem(n=1152, iterations=8)
    machine = repro.nacl(4)
    cache = TuningCache(Path(tempfile.mkdtemp()) / "tuning.json")

    result = repro.tune(problem, impl="ca-parsec", machine=machine,
                        budget=12, cache=cache)
    print(format_tuning_report(result))

    # A second tune is a pure cache hit: zero runs.
    warm = repro.tune(problem, impl="ca-parsec", machine=machine,
                      budget=12, cache=cache)
    print(f"\nwarm retune: source={warm.source}, "
          f"runs used={warm.runs_used}")

    # And the runner consumes the same entry through tile="auto".
    res = repro.run(problem, impl="ca-parsec", machine=machine,
                    tile="auto", steps="auto", tune_cache=cache)
    print(f"run(tile='auto'): picked tile={res.params['tile']} "
          f"steps={res.params['steps']} from the "
          f"{res.params['tune_source']} -> {res.gflops:.2f} GFLOP/s")


if __name__ == "__main__":
    main()
