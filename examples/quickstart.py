#!/usr/bin/env python
"""Quickstart: solve Laplace's equation three ways and compare.

Runs the paper's three implementations -- PETSc-style SpMV, base
task-based and communication-avoiding -- on a small grid in *execute*
mode (real numpy kernels on real data), verifies all three agree with
the single-array reference solver, and prints each run's modelled
performance on a 4-node NaCL machine.
"""

import numpy as np

import repro
from repro.analysis.tables import format_table


def main() -> None:
    # Laplace: interior starts at 0, the boundary is held at 1.0.
    problem = repro.JacobiProblem(
        n=128,
        iterations=50,
        init=0.0,
        bc=repro.DirichletBC(1.0),
        weights=repro.StencilWeights.laplace_jacobi(),
    )
    machine = repro.nacl(4)
    reference = problem.reference_solution()

    rows = []
    for impl, kwargs in (
        ("petsc", {}),
        ("base-parsec", {"tile": 32}),
        ("ca-parsec", {"tile": 32, "steps": 5}),
    ):
        result = repro.run(problem, impl=impl, machine=machine, mode="execute", **kwargs)
        error = float(np.max(np.abs(result.grid - reference)))
        rows.append((
            impl,
            f"{result.elapsed * 1e3:.2f}",
            f"{result.gflops:.2f}",
            result.messages,
            f"{error:.1e}",
        ))
        assert error < 1e-12, f"{impl} diverged from the reference"

    print(format_table(
        ("implementation", "model ms", "GFLOP/s", "messages", "max err vs reference"),
        rows,
        title=f"Jacobi {problem.shape[0]}^2, {problem.iterations} iterations "
              f"on {machine.name} x{machine.nodes} (modelled time, real numerics)",
    ))
    print("\nAll three implementations agree with the reference solver.")
    print(f"Jacobi is converging toward the boundary value 1.0: "
          f"interior mean {reference.mean():.4f} after {problem.iterations} sweeps.")


if __name__ == "__main__":
    main()
